//! Linear expressions over constraint variables.
//!
//! A [`LinearExpr`] is a sum `a1*X1 + ... + an*Xn + c` with exact rational
//! coefficients.  Linear arithmetic constraints (Definition 2.1 of the paper)
//! compare such an expression against zero.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Add, Mul, Neg, Sub};

use crate::rational::Rational;
use crate::var::Var;

/// A linear expression `Σ aᵢ·Xᵢ + c` with exact rational coefficients.
///
/// The representation is normalized: variables with a zero coefficient are
/// never stored, and terms are kept in a `BTreeMap` so that equal expressions
/// compare equal structurally.
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct LinearExpr {
    terms: BTreeMap<Var, Rational>,
    constant: Rational,
}

impl LinearExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        LinearExpr::default()
    }

    /// A constant expression.
    pub fn constant(value: impl Into<Rational>) -> Self {
        LinearExpr {
            terms: BTreeMap::new(),
            constant: value.into(),
        }
    }

    /// The expression consisting of a single variable with coefficient one.
    pub fn var(var: impl Into<Var>) -> Self {
        let mut terms = BTreeMap::new();
        terms.insert(var.into(), Rational::ONE);
        LinearExpr {
            terms,
            constant: Rational::ZERO,
        }
    }

    /// A single term `coefficient * variable`.
    pub fn term(coefficient: impl Into<Rational>, var: impl Into<Var>) -> Self {
        let c = coefficient.into();
        let mut terms = BTreeMap::new();
        if !c.is_zero() {
            terms.insert(var.into(), c);
        }
        LinearExpr {
            terms,
            constant: Rational::ZERO,
        }
    }

    /// Builds an expression from an iterator of `(coefficient, variable)`
    /// pairs plus a constant.
    pub fn from_terms<I>(terms: I, constant: impl Into<Rational>) -> Self
    where
        I: IntoIterator<Item = (Rational, Var)>,
    {
        let mut expr = LinearExpr::constant(constant);
        for (c, v) in terms {
            expr.add_term(c, v);
        }
        expr
    }

    /// Adds `coefficient * var` to this expression in place.
    pub fn add_term(&mut self, coefficient: impl Into<Rational>, var: impl Into<Var>) {
        let coefficient = coefficient.into();
        if coefficient.is_zero() {
            return;
        }
        let var = var.into();
        let entry = self.terms.entry(var.clone()).or_insert(Rational::ZERO);
        *entry += coefficient;
        if entry.is_zero() {
            self.terms.remove(&var);
        }
    }

    /// Adds a constant to this expression in place.
    pub fn add_constant(&mut self, value: impl Into<Rational>) {
        self.constant += value.into();
    }

    /// The constant part of the expression.
    pub fn constant_part(&self) -> Rational {
        self.constant
    }

    /// The coefficient of `var` (zero if absent).
    pub fn coefficient(&self, var: &Var) -> Rational {
        self.terms.get(var).copied().unwrap_or(Rational::ZERO)
    }

    /// Iterates over the `(variable, coefficient)` pairs.
    pub fn terms(&self) -> impl Iterator<Item = (&Var, &Rational)> {
        self.terms.iter()
    }

    /// The set of variables with a non-zero coefficient.
    pub fn vars(&self) -> impl Iterator<Item = &Var> {
        self.terms.keys()
    }

    /// Returns `true` if the expression mentions `var`.
    pub fn contains(&self, var: &Var) -> bool {
        self.terms.contains_key(var)
    }

    /// Returns `true` if the expression is a constant (has no variables).
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `true` if the expression is the zero constant.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// Number of variables in the expression.
    pub fn num_vars(&self) -> usize {
        self.terms.len()
    }

    /// Multiplies the expression by a rational scalar.
    pub fn scale(&self, factor: Rational) -> Self {
        if factor.is_zero() {
            return LinearExpr::zero();
        }
        LinearExpr {
            terms: self
                .terms
                .iter()
                .map(|(v, c)| (v.clone(), *c * factor))
                .collect(),
            constant: self.constant * factor,
        }
    }

    /// Substitutes `var := replacement` and returns the resulting expression.
    pub fn substitute(&self, var: &Var, replacement: &LinearExpr) -> Self {
        let coeff = self.coefficient(var);
        if coeff.is_zero() {
            return self.clone();
        }
        let mut result = self.clone();
        result.terms.remove(var);
        result = result + replacement.scale(coeff);
        result
    }

    /// Renames variables according to `mapping`; unmapped variables are kept.
    pub fn rename(&self, mapping: &dyn Fn(&Var) -> Var) -> Self {
        let mut result = LinearExpr::constant(self.constant);
        for (v, c) in &self.terms {
            result.add_term(*c, mapping(v));
        }
        result
    }

    /// Evaluates the expression under a (total) assignment.
    ///
    /// Returns `None` if some variable is unassigned.
    pub fn evaluate(&self, assignment: &dyn Fn(&Var) -> Option<Rational>) -> Option<Rational> {
        let mut acc = self.constant;
        for (v, c) in &self.terms {
            acc += *c * assignment(v)?;
        }
        Some(acc)
    }
}

impl Add for LinearExpr {
    type Output = LinearExpr;
    fn add(self, rhs: LinearExpr) -> LinearExpr {
        let mut result = self;
        for (v, c) in rhs.terms {
            result.add_term(c, v);
        }
        result.constant += rhs.constant;
        result
    }
}

impl Sub for LinearExpr {
    type Output = LinearExpr;
    fn sub(self, rhs: LinearExpr) -> LinearExpr {
        self + (-rhs)
    }
}

impl Neg for LinearExpr {
    type Output = LinearExpr;
    fn neg(self) -> LinearExpr {
        self.scale(-Rational::ONE)
    }
}

impl Mul<Rational> for LinearExpr {
    type Output = LinearExpr;
    fn mul(self, rhs: Rational) -> LinearExpr {
        self.scale(rhs)
    }
}

impl From<Var> for LinearExpr {
    fn from(var: Var) -> Self {
        LinearExpr::var(var)
    }
}

impl From<Rational> for LinearExpr {
    fn from(value: Rational) -> Self {
        LinearExpr::constant(value)
    }
}

impl From<i64> for LinearExpr {
    fn from(value: i64) -> Self {
        LinearExpr::constant(Rational::from_int(value as i128))
    }
}

impl fmt::Display for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (v, c) in &self.terms {
            if first {
                if *c == Rational::ONE {
                    write!(f, "{v}")?;
                } else if *c == -Rational::ONE {
                    write!(f, "-{v}")?;
                } else {
                    write!(f, "{c}*{v}")?;
                }
                first = false;
            } else if c.is_negative() {
                if *c == -Rational::ONE {
                    write!(f, " - {v}")?;
                } else {
                    write!(f, " - {}*{v}", c.abs())?;
                }
            } else if *c == Rational::ONE {
                write!(f, " + {v}")?;
            } else {
                write!(f, " + {c}*{v}")?;
            }
        }
        if first {
            write!(f, "{}", self.constant)?;
        } else if self.constant.is_positive() {
            write!(f, " + {}", self.constant)?;
        } else if self.constant.is_negative() {
            write!(f, " - {}", self.constant.abs())?;
        }
        Ok(())
    }
}

impl fmt::Debug for LinearExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Display::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x() -> Var {
        Var::new("X")
    }
    fn y() -> Var {
        Var::new("Y")
    }

    #[test]
    fn addition_merges_terms_and_drops_zeros() {
        let e = LinearExpr::term(2, x()) + LinearExpr::term(-2, x()) + LinearExpr::var(y());
        assert!(!e.contains(&x()));
        assert_eq!(e.coefficient(&y()), Rational::ONE);
    }

    #[test]
    fn substitution_is_linear() {
        // (2X + Y + 1)[X := Y - 3] = 3Y - 5
        let e = LinearExpr::from_terms(
            [(Rational::from_int(2), x()), (Rational::ONE, y())],
            Rational::ONE,
        );
        let replacement = LinearExpr::var(y()) - LinearExpr::constant(3);
        let result = e.substitute(&x(), &replacement);
        assert_eq!(result.coefficient(&y()), Rational::from_int(3));
        assert_eq!(result.constant_part(), Rational::from_int(-5));
        assert!(!result.contains(&x()));
    }

    #[test]
    fn evaluation_requires_all_vars() {
        let e = LinearExpr::var(x()) + LinearExpr::constant(1);
        assert_eq!(e.evaluate(&|_| None), None);
        let val = e.evaluate(&|v| {
            if *v == x() {
                Some(Rational::from_int(4))
            } else {
                None
            }
        });
        assert_eq!(val, Some(Rational::from_int(5)));
    }

    #[test]
    fn display_is_readable() {
        let e = LinearExpr::term(1, x()) + LinearExpr::term(-2, y()) + LinearExpr::constant(3);
        assert_eq!(e.to_string(), "X - 2*Y + 3");
        assert_eq!(LinearExpr::zero().to_string(), "0");
    }

    #[test]
    fn scaling_by_zero_gives_zero() {
        let e = LinearExpr::var(x()) + LinearExpr::constant(7);
        assert!(e.scale(Rational::ZERO).is_zero());
    }
}
