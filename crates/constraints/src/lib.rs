//! # pcs-constraints
//!
//! Linear arithmetic constraint algebra for constraint query languages, the
//! algebraic substrate assumed by *Pushing Constraint Selections*
//! (Srivastava & Ramakrishnan, PODS 1992 / JLP 1993).
//!
//! The crate provides:
//!
//! * exact rational arithmetic ([`Rational`]),
//! * linear expressions ([`LinearExpr`]) over named variables ([`Var`]),
//! * atomic linear constraints ([`Atom`], Definition 2.1 of the paper),
//! * conjunctions with Fourier–Motzkin satisfiability, implication and
//!   projection ([`Conjunction`]),
//! * constraint sets in DNF ([`ConstraintSet`], Definition 2.3) with
//!   redundant-disjunct elimination, the non-overlapping rewriting of
//!   Section 4.6, and exact implication checking,
//! * the `PTOL`/`LTOP` conversions between argument-position constraints and
//!   rule-variable constraints (Definitions 2.7/2.8).
//!
//! Everything is exact: there is no floating point anywhere in the crate, so
//! the paper's correctness arguments (which rely on exact quantifier
//! elimination) carry over to the implementation.
//!
//! ## Example
//!
//! ```
//! use pcs_constraints::{Atom, CmpOp, Conjunction, ConstraintSet, LinearExpr, Var};
//!
//! // (X + Y <= 6) & (X >= 2)  implies  Y <= 4   (Example 4.1 of the paper)
//! let x = Var::new("X");
//! let y = Var::new("Y");
//! let body = Conjunction::from_atoms([
//!     Atom::compare(
//!         LinearExpr::var(x.clone()) + LinearExpr::var(y.clone()),
//!         CmpOp::Le,
//!         LinearExpr::constant(6),
//!     ),
//!     Atom::var_ge(x.clone(), 2),
//! ]);
//! assert!(body.implies_atom(&Atom::var_le(y.clone(), 4)));
//!
//! // Projection (quantifier elimination) onto Y:
//! let keep = [y.clone()].into_iter().collect();
//! let projected = body.project(&keep);
//! assert!(projected.equivalent(&Conjunction::of(Atom::var_le(y, 4))));
//! # let _ = ConstraintSet::truth();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]
#![deny(deprecated)]

pub mod atom;
pub mod conjunction;
pub mod dnf;
pub mod error;
pub mod linear;
pub mod position;
pub mod rational;
pub mod var;

pub use atom::{Atom, CmpOp, Rel};
pub use conjunction::Conjunction;
pub use dnf::{ConstraintSet, DEFAULT_IMPLICATION_BUDGET};
pub use error::{ConstraintError, Result};
pub use linear::LinearExpr;
pub use position::{ltop, ptol, PosArg};
pub use rational::Rational;
pub use var::{Var, VarGen};
