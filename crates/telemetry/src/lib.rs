//! Process-wide telemetry registry for the pushing-constraint-selections
//! stack.
//!
//! The registry is a fixed set of enum-indexed atomics — counters, per-phase
//! monotonic timers, fixed-bucket latency histograms, and gauges — so
//! recording never allocates.  Hot-path counters ([`bump`]) accumulate in
//! plain thread-local cells and are folded into the shared atomics by
//! [`flush_thread`], keeping the engine's inner join loops free of shared
//! cache-line traffic; everything else writes the shared atomics directly
//! with relaxed ordering.
//!
//! Recording is gated by a global [`TelemetryMode`], initialised lazily from
//! `PCS_TELEMETRY` (`off` | `on` | `trace`, default `off`) and overridable
//! with [`set_mode`].  When the mode is [`TelemetryMode::Off`] every
//! recording entry point returns after a single relaxed load, so a disabled
//! build pays no measurable cost.  [`TelemetryMode::Trace`] additionally
//! emits JSON-lines span events to the file named by `PCS_TRACE_JSON`.
//!
//! Two render surfaces read the registry: [`render_table`] (the shell's
//! `.metrics` command) and [`render_prometheus`] (`.metrics prom`, a
//! Prometheus-style text exposition).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![deny(deprecated)]

use std::cell::Cell;
use std::collections::VecDeque;
use std::fmt::Write as _;
use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, AtomicU8, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// How much the registry records.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TelemetryMode {
    /// Record nothing; every entry point is a single relaxed load.
    Off,
    /// Record counters, timers, histograms, and gauges.
    On,
    /// Like `On`, plus JSON-lines span events to `PCS_TRACE_JSON`.
    Trace,
}

const MODE_UNSET: u8 = u8::MAX;
static MODE: AtomicU8 = AtomicU8::new(MODE_UNSET);

impl TelemetryMode {
    /// Parses the `PCS_TELEMETRY` value; `None` for an unrecognised one.
    fn parse(value: &str) -> Option<Self> {
        match value.trim().to_ascii_lowercase().as_str() {
            "off" | "0" | "false" | "no" => Some(Self::Off),
            "on" | "1" | "true" | "yes" => Some(Self::On),
            "trace" => Some(Self::Trace),
            _ => None,
        }
    }

    fn from_u8(value: u8) -> Self {
        match value {
            1 => Self::On,
            2 => Self::Trace,
            _ => Self::Off,
        }
    }

    fn as_u8(self) -> u8 {
        match self {
            Self::Off => 0,
            Self::On => 1,
            Self::Trace => 2,
        }
    }

    /// Lower-case name, as accepted by `PCS_TELEMETRY`.
    pub fn as_str(self) -> &'static str {
        match self {
            Self::Off => "off",
            Self::On => "on",
            Self::Trace => "trace",
        }
    }
}

/// The current global mode, initialised from `PCS_TELEMETRY` on first use.
///
/// An unrecognised value warns on stderr (matching the engine's env-toggle
/// idiom) and falls back to `off`.
pub fn mode() -> TelemetryMode {
    let raw = MODE.load(Ordering::Relaxed);
    if raw != MODE_UNSET {
        return TelemetryMode::from_u8(raw);
    }
    let parsed = match std::env::var("PCS_TELEMETRY") {
        Ok(value) => TelemetryMode::parse(&value).unwrap_or_else(|| {
            eprintln!(
                "warning: invalid PCS_TELEMETRY value {value:?} (expected off|on|trace); \
                 using off"
            );
            TelemetryMode::Off
        }),
        Err(_) => TelemetryMode::Off,
    };
    MODE.store(parsed.as_u8(), Ordering::Relaxed);
    parsed
}

/// Overrides the global mode (tests, experiments, service flags).
pub fn set_mode(mode: TelemetryMode) {
    MODE.store(mode.as_u8(), Ordering::Relaxed);
}

/// `true` when the registry records at all (mode is `on` or `trace`).
#[inline]
pub fn enabled() -> bool {
    mode() != TelemetryMode::Off
}

// ---------------------------------------------------------------------------
// Counters
// ---------------------------------------------------------------------------

/// The fixed counter catalog.
///
/// Engine counters (`IndexProbes` … `FmSatCalls`) are bumped via the
/// thread-local fast path and become visible after [`flush_thread`]; service
/// counters are added directly.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Counter {
    /// Hash-index probe operations issued by the join cores.
    IndexProbes = 0,
    /// Probed or scanned candidate facts that extended a partial match.
    ProbeHits,
    /// Probed or scanned candidate facts that failed to match.
    ProbeMisses,
    /// Existence (semi-join) shortcuts that cut a scan short.
    ExistenceShortcuts,
    /// Subsumption checks performed on insert (`Relation::covers`).
    SubsumptionChecks,
    /// Fourier–Motzkin satisfiability calls made by the engine.
    FmSatCalls,
    /// Static join plans compiled (`pcs_engine::plan::compile_plans`).
    PlansCompiled,
    /// Queries answered by the service layer.
    Queries,
    /// Update batches applied by the service layer.
    Updates,
    /// Update batches that rode along in another batch's evaluation pass
    /// (server-side coalescing): of a group of N concurrently queued
    /// batches applied as one epoch, N−1 count here.
    CoalescedUpdates,
    /// Queries slower than the `PCS_SLOW_QUERY_MS` threshold.
    SlowQueries,
}

/// Number of counters in [`Counter`].
pub const COUNTER_COUNT: usize = 11;

/// All counters with their snake_case names, in catalog order.
pub const COUNTERS: [(Counter, &str); COUNTER_COUNT] = [
    (Counter::IndexProbes, "index_probes"),
    (Counter::ProbeHits, "probe_hits"),
    (Counter::ProbeMisses, "probe_misses"),
    (Counter::ExistenceShortcuts, "existence_shortcuts"),
    (Counter::SubsumptionChecks, "subsumption_checks"),
    (Counter::FmSatCalls, "fm_sat_calls"),
    (Counter::PlansCompiled, "plans_compiled"),
    (Counter::Queries, "queries"),
    (Counter::Updates, "updates"),
    (Counter::CoalescedUpdates, "coalesced_updates"),
    (Counter::SlowQueries, "slow_queries"),
];

#[allow(clippy::declare_interior_mutable_const)]
const COUNTER_CELL_INIT: AtomicU64 = AtomicU64::new(0);

static COUNTER_CELLS: [AtomicU64; COUNTER_COUNT] = [COUNTER_CELL_INIT; COUNTER_COUNT];

thread_local! {
    static LOCAL_COUNTS: [Cell<u64>; COUNTER_COUNT] =
        std::array::from_fn(|_| Cell::new(0));
}

/// Increments a counter on the thread-local fast path (no-op when disabled).
///
/// The increment becomes globally visible at the next [`flush_thread`] on
/// this thread.
#[inline]
pub fn bump(counter: Counter) {
    bump_by(counter, 1);
}

/// Adds `n` to a counter on the thread-local fast path (no-op when
/// disabled).
#[inline]
pub fn bump_by(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    LOCAL_COUNTS.with(|cells| {
        let cell = &cells[counter as usize];
        cell.set(cell.get().wrapping_add(n));
    });
}

/// Folds this thread's local counter cells into the shared registry.
///
/// The engine calls this once per evaluation on the driving thread and once
/// per worker at the end of a parallel round, so inner join loops touch only
/// thread-local memory.
pub fn flush_thread() {
    LOCAL_COUNTS.with(|cells| {
        for (index, cell) in cells.iter().enumerate() {
            let value = cell.take();
            if value > 0 {
                COUNTER_CELLS[index].fetch_add(value, Ordering::Relaxed);
            }
        }
    });
}

/// Adds `n` directly to the shared counter (no-op when disabled); for cold
/// paths that may not flush (service layer, one-shot events).
pub fn add(counter: Counter, n: u64) {
    if !enabled() {
        return;
    }
    COUNTER_CELLS[counter as usize].fetch_add(n, Ordering::Relaxed);
}

/// Current value of a shared counter (thread-local cells not yet flushed are
/// invisible).
pub fn counter(counter: Counter) -> u64 {
    COUNTER_CELLS[counter as usize].load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Phase timers
// ---------------------------------------------------------------------------

/// The evaluation phases timed by the engine and optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Phase {
    /// Static analysis (`pcs-analysis` passes) during `optimize()`.
    Analyze = 0,
    /// Constraint/magic rewriting during `optimize()`.
    Rewrite,
    /// Static join-plan compilation (`Evaluator::new`).
    PlanCompile,
    /// The from-scratch semi-naive fixpoint.
    Fixpoint,
    /// A resumed fixpoint over an update delta.
    Resume,
    /// A DRed-style retraction (over-delete + re-derive + resume).
    Retract,
}

/// Number of phases in [`Phase`].
pub const PHASE_COUNT: usize = 6;

/// All phases with their snake_case names, in catalog order.
pub const PHASES: [(Phase, &str); PHASE_COUNT] = [
    (Phase::Analyze, "analyze"),
    (Phase::Rewrite, "rewrite"),
    (Phase::PlanCompile, "plan_compile"),
    (Phase::Fixpoint, "fixpoint"),
    (Phase::Resume, "resume"),
    (Phase::Retract, "retract"),
];

struct PhaseCell {
    count: AtomicU64,
    total_nanos: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const PHASE_CELL_INIT: PhaseCell = PhaseCell {
    count: AtomicU64::new(0),
    total_nanos: AtomicU64::new(0),
};

static PHASE_CELLS: [PhaseCell; PHASE_COUNT] = [PHASE_CELL_INIT; PHASE_COUNT];

/// Records one completed span of `phase` lasting `nanos`.
///
/// Unlike the counter fast path this is *not* gated on the global mode: the
/// engine gates spans per evaluation via `EvalOptions::telemetry`, so a span
/// that was explicitly requested is always recorded.  Trace emission still
/// requires [`TelemetryMode::Trace`].
pub fn record_phase(phase: Phase, nanos: u64) {
    let cell = &PHASE_CELLS[phase as usize];
    cell.count.fetch_add(1, Ordering::Relaxed);
    cell.total_nanos.fetch_add(nanos, Ordering::Relaxed);
    if mode() == TelemetryMode::Trace {
        trace_span(phase_name(phase), nanos);
    }
}

/// `(count, total nanoseconds)` recorded for a phase so far.
pub fn phase_totals(phase: Phase) -> (u64, u64) {
    let cell = &PHASE_CELLS[phase as usize];
    (
        cell.count.load(Ordering::Relaxed),
        cell.total_nanos.load(Ordering::Relaxed),
    )
}

fn phase_name(phase: Phase) -> &'static str {
    PHASES[phase as usize].1
}

/// An in-flight phase timer; records into the registry when dropped.
///
/// A disarmed span (from [`span_if`] with `false`, or [`span`] while the
/// registry is off) holds no state and drops for free.
#[must_use = "a span records its phase when dropped"]
pub struct Span {
    phase: Phase,
    start: Option<Instant>,
}

impl Span {
    /// Disarms the span so dropping it records nothing.
    pub fn cancel(&mut self) {
        self.start = None;
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(start) = self.start {
            let nanos = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            record_phase(self.phase, nanos);
        }
    }
}

/// Starts a span for `phase` if the registry is enabled.
pub fn span(phase: Phase) -> Span {
    span_if(enabled(), phase)
}

/// Starts a span for `phase` if `armed` (the engine passes
/// `EvalOptions::telemetry`).
pub fn span_if(armed: bool, phase: Phase) -> Span {
    Span {
        phase,
        start: armed.then(Instant::now),
    }
}

// ---------------------------------------------------------------------------
// Trace (JSON-lines span events)
// ---------------------------------------------------------------------------

static TRACE_FILE: OnceLock<Option<Mutex<File>>> = OnceLock::new();
static TRACE_SEQ: AtomicU64 = AtomicU64::new(0);

fn trace_span(phase: &str, nanos: u64) {
    let Some(file) = TRACE_FILE
        .get_or_init(|| {
            let path = std::env::var("PCS_TRACE_JSON").ok()?;
            match OpenOptions::new().create(true).append(true).open(&path) {
                Ok(file) => Some(Mutex::new(file)),
                Err(err) => {
                    eprintln!("warning: cannot open PCS_TRACE_JSON file {path:?}: {err}");
                    None
                }
            }
        })
        .as_ref()
    else {
        return;
    };
    let seq = TRACE_SEQ.fetch_add(1, Ordering::Relaxed);
    let line =
        format!("{{\"event\":\"span\",\"phase\":\"{phase}\",\"nanos\":{nanos},\"seq\":{seq}}}\n");
    if let Ok(mut file) = file.lock() {
        let _ = file.write_all(line.as_bytes());
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// The fixed latency histograms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Hist {
    /// End-to-end session query latency.
    QueryLatency = 0,
    /// End-to-end session update-batch latency.
    UpdateLatency,
}

/// Number of histograms in [`Hist`].
pub const HIST_COUNT: usize = 2;

/// All histograms with their snake_case names, in catalog order.
pub const HISTS: [(Hist, &str); HIST_COUNT] = [
    (Hist::QueryLatency, "query_latency"),
    (Hist::UpdateLatency, "update_latency"),
];

/// Inclusive upper bounds (nanoseconds) of the finite histogram buckets;
/// observations above the last bound land in the overflow bucket.
///
/// The 1-2-5-style ladder keeps percentile estimates
/// ([`HistSnapshot::percentile_nanos`]) within roughly a 2–2.5× bound-ratio
/// of the truth across the microsecond-to-minute range the service sees.
pub const BUCKET_BOUNDS_NANOS: [u64; 16] = [
    10_000,         // 10µs
    25_000,         // 25µs
    50_000,         // 50µs
    100_000,        // 100µs
    250_000,        // 250µs
    500_000,        // 500µs
    1_000_000,      // 1ms
    2_500_000,      // 2.5ms
    5_000_000,      // 5ms
    10_000_000,     // 10ms
    25_000_000,     // 25ms
    100_000_000,    // 100ms
    1_000_000_000,  // 1s
    10_000_000_000, // 10s
    30_000_000_000, // 30s
    60_000_000_000, // 60s
];

/// Total bucket count: the finite buckets plus the overflow bucket.
pub const BUCKET_COUNT: usize = BUCKET_BOUNDS_NANOS.len() + 1;

/// The finite bucket whose bound is the first `>= nanos`, or the overflow
/// bucket index (`BUCKET_COUNT - 1`).
pub fn bucket_index(nanos: u64) -> usize {
    BUCKET_BOUNDS_NANOS
        .iter()
        .position(|bound| nanos <= *bound)
        .unwrap_or(BUCKET_BOUNDS_NANOS.len())
}

struct HistCell {
    buckets: [AtomicU64; BUCKET_COUNT],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

#[allow(clippy::declare_interior_mutable_const)]
const HIST_BUCKET_INIT: AtomicU64 = AtomicU64::new(0);

#[allow(clippy::declare_interior_mutable_const)]
const HIST_CELL_INIT: HistCell = HistCell {
    buckets: [HIST_BUCKET_INIT; BUCKET_COUNT],
    sum_nanos: AtomicU64::new(0),
    count: AtomicU64::new(0),
};

static HIST_CELLS: [HistCell; HIST_COUNT] = [HIST_CELL_INIT; HIST_COUNT];

/// Records one observation of `nanos` into a histogram (no-op when
/// disabled).
pub fn observe(hist: Hist, nanos: u64) {
    if !enabled() {
        return;
    }
    let cell = &HIST_CELLS[hist as usize];
    cell.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
    cell.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    cell.count.fetch_add(1, Ordering::Relaxed);
}

/// A read-only copy of one histogram's state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistSnapshot {
    /// Per-bucket observation counts (last entry is the overflow bucket).
    pub buckets: [u64; BUCKET_COUNT],
    /// Sum of all observed values, in nanoseconds.
    pub sum_nanos: u64,
    /// Total number of observations.
    pub count: u64,
}

impl HistSnapshot {
    /// Estimates the `q`-quantile (`0.0 ..= 1.0`) of the observations in
    /// nanoseconds by linear interpolation inside the bucket holding the
    /// quantile rank; `None` for an empty histogram.
    ///
    /// Observations that landed in the overflow bucket are reported as the
    /// last finite bound (the estimate saturates rather than extrapolating
    /// past what the histogram can resolve).
    pub fn percentile_nanos(&self, q: f64) -> Option<u64> {
        if self.count == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        // The 1-based rank of the quantile observation.
        let rank = ((q * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (index, observed) in self.buckets.iter().enumerate() {
            if *observed == 0 {
                continue;
            }
            if seen + observed >= rank {
                let upper = if index < BUCKET_BOUNDS_NANOS.len() {
                    BUCKET_BOUNDS_NANOS[index]
                } else {
                    return Some(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1]);
                };
                let lower = if index == 0 {
                    0
                } else {
                    BUCKET_BOUNDS_NANOS[index - 1]
                };
                // Interpolate the rank's position within this bucket.
                let into = (rank - seen) as f64 / *observed as f64;
                return Some(lower + ((upper - lower) as f64 * into) as u64);
            }
            seen += observed;
        }
        Some(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1])
    }

    /// The standard serving percentiles `(p50, p95, p99)` in nanoseconds;
    /// `None` for an empty histogram.
    pub fn percentiles(&self) -> Option<(u64, u64, u64)> {
        Some((
            self.percentile_nanos(0.50)?,
            self.percentile_nanos(0.95)?,
            self.percentile_nanos(0.99)?,
        ))
    }
}

/// Snapshots a histogram's current buckets, sum, and count.
pub fn hist_snapshot(hist: Hist) -> HistSnapshot {
    let cell = &HIST_CELLS[hist as usize];
    HistSnapshot {
        buckets: std::array::from_fn(|i| cell.buckets[i].load(Ordering::Relaxed)),
        sum_nanos: cell.sum_nanos.load(Ordering::Relaxed),
        count: cell.count.load(Ordering::Relaxed),
    }
}

// ---------------------------------------------------------------------------
// Gauges
// ---------------------------------------------------------------------------

/// The fixed gauge catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(usize)]
pub enum Gauge {
    /// Update batches currently queued on or holding the session's update
    /// lock.
    UpdateQueueDepth = 0,
    /// Epochs the last completed query's snapshot trailed the session head
    /// by at the time it finished.
    EpochLag,
}

/// Number of gauges in [`Gauge`].
pub const GAUGE_COUNT: usize = 2;

/// All gauges with their snake_case names, in catalog order.
pub const GAUGES: [(Gauge, &str); GAUGE_COUNT] = [
    (Gauge::UpdateQueueDepth, "update_queue_depth"),
    (Gauge::EpochLag, "epoch_lag"),
];

static GAUGE_CELLS: [AtomicI64; GAUGE_COUNT] = [AtomicI64::new(0), AtomicI64::new(0)];

/// Adds `delta` (possibly negative) to a gauge.
///
/// Not gated on the mode: gauges track live state (queue depth), and a
/// gated decrement after an ungated increment would wedge the value.  The
/// service gates the *pair* of calls on [`enabled`] instead.
pub fn gauge_add(gauge: Gauge, delta: i64) {
    GAUGE_CELLS[gauge as usize].fetch_add(delta, Ordering::Relaxed);
}

/// Sets a gauge to an absolute value (no-op when disabled).
pub fn gauge_set(gauge: Gauge, value: i64) {
    if !enabled() {
        return;
    }
    GAUGE_CELLS[gauge as usize].store(value, Ordering::Relaxed);
}

/// Current value of a gauge.
pub fn gauge(gauge: Gauge) -> i64 {
    GAUGE_CELLS[gauge as usize].load(Ordering::Relaxed)
}

// ---------------------------------------------------------------------------
// Slow-query log
// ---------------------------------------------------------------------------

const SLOW_LOG_CAPACITY: usize = 16;
static SLOW_LOG: OnceLock<Mutex<VecDeque<(String, u64)>>> = OnceLock::new();
static SLOW_THRESHOLD_NANOS: AtomicU64 = AtomicU64::new(u64::MAX);

const SLOW_THRESHOLD_UNSET: u64 = u64::MAX;
const SLOW_THRESHOLD_DEFAULT_MS: u64 = 500;

/// The slow-query threshold in nanoseconds, from `PCS_SLOW_QUERY_MS`
/// (default 500ms).
pub fn slow_query_threshold_nanos() -> u64 {
    let cached = SLOW_THRESHOLD_NANOS.load(Ordering::Relaxed);
    if cached != SLOW_THRESHOLD_UNSET {
        return cached;
    }
    let millis = match std::env::var("PCS_SLOW_QUERY_MS") {
        Ok(value) => value.trim().parse::<u64>().unwrap_or_else(|_| {
            eprintln!(
                "warning: invalid PCS_SLOW_QUERY_MS value {value:?} (expected milliseconds); \
                 using {SLOW_THRESHOLD_DEFAULT_MS}"
            );
            SLOW_THRESHOLD_DEFAULT_MS
        }),
        Err(_) => SLOW_THRESHOLD_DEFAULT_MS,
    };
    let nanos = millis.saturating_mul(1_000_000);
    SLOW_THRESHOLD_NANOS.store(nanos, Ordering::Relaxed);
    nanos
}

/// Overrides the slow-query threshold (tests).
pub fn set_slow_query_threshold_nanos(nanos: u64) {
    SLOW_THRESHOLD_NANOS.store(nanos, Ordering::Relaxed);
}

/// Records a query that crossed the slow threshold: bumps
/// [`Counter::SlowQueries`] and appends `(text, nanos)` to a bounded
/// most-recent log.
pub fn slow_query(text: &str, nanos: u64) {
    if !enabled() {
        return;
    }
    add(Counter::SlowQueries, 1);
    let log = SLOW_LOG.get_or_init(|| Mutex::new(VecDeque::new()));
    if let Ok(mut log) = log.lock() {
        if log.len() == SLOW_LOG_CAPACITY {
            log.pop_front();
        }
        log.push_back((text.to_string(), nanos));
    }
}

/// The most recent slow queries, oldest first.
pub fn slow_queries() -> Vec<(String, u64)> {
    SLOW_LOG
        .get()
        .and_then(|log| log.lock().ok())
        .map(|log| log.iter().cloned().collect())
        .unwrap_or_default()
}

// ---------------------------------------------------------------------------
// Reset (tests and experiments)
// ---------------------------------------------------------------------------

/// Zeroes every counter, phase timer, histogram, gauge, and the slow-query
/// log (the mode and thresholds are left alone).  Thread-local cells on
/// *other* threads are untouched; flush them first if their counts matter.
pub fn reset() {
    LOCAL_COUNTS.with(|cells| {
        for cell in cells {
            cell.set(0);
        }
    });
    for cell in &COUNTER_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    for cell in &PHASE_CELLS {
        cell.count.store(0, Ordering::Relaxed);
        cell.total_nanos.store(0, Ordering::Relaxed);
    }
    for cell in &HIST_CELLS {
        for bucket in &cell.buckets {
            bucket.store(0, Ordering::Relaxed);
        }
        cell.sum_nanos.store(0, Ordering::Relaxed);
        cell.count.store(0, Ordering::Relaxed);
    }
    for cell in &GAUGE_CELLS {
        cell.store(0, Ordering::Relaxed);
    }
    if let Some(log) = SLOW_LOG.get() {
        if let Ok(mut log) = log.lock() {
            log.clear();
        }
    }
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn format_nanos(nanos: u64) -> String {
    if nanos >= 1_000_000_000 {
        format!("{:.3}s", nanos as f64 / 1e9)
    } else if nanos >= 1_000_000 {
        format!("{:.3}ms", nanos as f64 / 1e6)
    } else if nanos >= 1_000 {
        format!("{:.1}us", nanos as f64 / 1e3)
    } else {
        format!("{nanos}ns")
    }
}

fn bound_label(index: usize) -> String {
    if index < BUCKET_BOUNDS_NANOS.len() {
        format!("<={}", format_nanos(BUCKET_BOUNDS_NANOS[index]))
    } else {
        "overflow".to_string()
    }
}

/// Renders the whole registry as a human-readable table (the shell's
/// `.metrics` command).
pub fn render_table() -> String {
    let mut out = String::new();
    let _ = writeln!(out, "telemetry: {}", mode().as_str());
    let _ = writeln!(out, "counters:");
    for (counter_id, name) in COUNTERS {
        let _ = writeln!(out, "  {:<21} {}", name, counter(counter_id));
    }
    let _ = writeln!(out, "phases:");
    for (phase_id, name) in PHASES {
        let (count, nanos) = phase_totals(phase_id);
        let _ = writeln!(
            out,
            "  {:<21} count={} total={}",
            name,
            count,
            format_nanos(nanos)
        );
    }
    let _ = writeln!(out, "histograms:");
    for (hist_id, name) in HISTS {
        let snap = hist_snapshot(hist_id);
        match snap.percentiles() {
            Some((p50, p95, p99)) => {
                let _ = writeln!(
                    out,
                    "  {:<21} count={} sum={} p50={} p95={} p99={}",
                    name,
                    snap.count,
                    format_nanos(snap.sum_nanos),
                    format_nanos(p50),
                    format_nanos(p95),
                    format_nanos(p99)
                );
            }
            None => {
                let _ = writeln!(
                    out,
                    "  {:<21} count={} sum={}",
                    name,
                    snap.count,
                    format_nanos(snap.sum_nanos)
                );
            }
        }
        for (index, observed) in snap.buckets.iter().enumerate() {
            if *observed > 0 {
                let _ = writeln!(out, "    {:<12} {}", bound_label(index), observed);
            }
        }
    }
    let _ = writeln!(out, "gauges:");
    for (gauge_id, name) in GAUGES {
        let _ = writeln!(out, "  {:<21} {}", name, gauge(gauge_id));
    }
    let threshold = slow_query_threshold_nanos();
    let _ = writeln!(out, "slow queries (threshold {}):", format_nanos(threshold));
    let slow = slow_queries();
    if slow.is_empty() {
        let _ = writeln!(out, "  none");
    } else {
        for (text, nanos) in slow {
            let _ = writeln!(out, "  {} {}", format_nanos(nanos), text);
        }
    }
    out
}

/// Renders the registry in the Prometheus text exposition format
/// (`.metrics prom`).
pub fn render_prometheus() -> String {
    let mut out = String::new();
    for (counter_id, name) in COUNTERS {
        let _ = writeln!(out, "# TYPE pcs_{name}_total counter");
        let _ = writeln!(out, "pcs_{name}_total {}", counter(counter_id));
    }
    let _ = writeln!(out, "# TYPE pcs_phase_seconds_total counter");
    for (phase_id, name) in PHASES {
        let (count, nanos) = phase_totals(phase_id);
        let _ = writeln!(
            out,
            "pcs_phase_seconds_total{{phase=\"{name}\"}} {:.9}",
            nanos as f64 / 1e9
        );
        let _ = writeln!(out, "pcs_phase_spans_total{{phase=\"{name}\"}} {count}");
    }
    for (hist_id, name) in HISTS {
        let snap = hist_snapshot(hist_id);
        let _ = writeln!(out, "# TYPE pcs_{name}_seconds histogram");
        let mut cumulative = 0u64;
        for (index, observed) in snap.buckets.iter().enumerate() {
            cumulative += observed;
            if index < BUCKET_BOUNDS_NANOS.len() {
                let _ = writeln!(
                    out,
                    "pcs_{name}_seconds_bucket{{le=\"{}\"}} {cumulative}",
                    BUCKET_BOUNDS_NANOS[index] as f64 / 1e9
                );
            } else {
                let _ = writeln!(out, "pcs_{name}_seconds_bucket{{le=\"+Inf\"}} {cumulative}");
            }
        }
        let _ = writeln!(
            out,
            "pcs_{name}_seconds_sum {:.9}",
            snap.sum_nanos as f64 / 1e9
        );
        let _ = writeln!(out, "pcs_{name}_seconds_count {}", snap.count);
    }
    for (gauge_id, name) in GAUGES {
        let _ = writeln!(out, "# TYPE pcs_{name} gauge");
        let _ = writeln!(out, "pcs_{name} {}", gauge(gauge_id));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn with_registry<T>(test: impl FnOnce() -> T) -> T {
        // The registry is process-global and `cargo test` runs tests on
        // threads of one process: serialize registry-touching tests.
        static LOCK: Mutex<()> = Mutex::new(());
        let _guard = LOCK
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        set_mode(TelemetryMode::On);
        reset();
        let result = test();
        reset();
        set_mode(TelemetryMode::Off);
        result
    }

    #[test]
    fn mode_parsing_accepts_documented_values() {
        assert_eq!(TelemetryMode::parse("off"), Some(TelemetryMode::Off));
        assert_eq!(TelemetryMode::parse("ON"), Some(TelemetryMode::On));
        assert_eq!(TelemetryMode::parse(" trace "), Some(TelemetryMode::Trace));
        assert_eq!(TelemetryMode::parse("verbose"), None);
    }

    #[test]
    fn bucket_zero_lands_in_first_bucket() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
    }

    #[test]
    fn bucket_bound_is_inclusive() {
        for (index, bound) in BUCKET_BOUNDS_NANOS.iter().enumerate() {
            assert_eq!(bucket_index(*bound), index, "bound {bound} inclusive");
            assert_eq!(bucket_index(*bound + 1), index + 1, "bound {bound} + 1");
        }
    }

    #[test]
    fn bucket_max_lands_in_overflow() {
        assert_eq!(bucket_index(u64::MAX), BUCKET_COUNT - 1);
        assert_eq!(
            bucket_index(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1] + 1),
            BUCKET_COUNT - 1
        );
    }

    #[test]
    fn observe_accumulates_sum_count_and_buckets() {
        with_registry(|| {
            observe(Hist::QueryLatency, 0);
            observe(Hist::QueryLatency, 5_000);
            observe(Hist::QueryLatency, 2_000_000);
            observe(Hist::QueryLatency, u64::MAX);
            let snap = hist_snapshot(Hist::QueryLatency);
            assert_eq!(snap.count, 4);
            assert_eq!(snap.buckets[0], 2);
            assert_eq!(snap.buckets[bucket_index(2_000_000)], 1);
            assert_eq!(snap.buckets[BUCKET_COUNT - 1], 1);
            assert_eq!(
                snap.sum_nanos,
                0u64.wrapping_add(5_000)
                    .wrapping_add(2_000_000)
                    .wrapping_add(u64::MAX)
            );
        });
    }

    #[test]
    fn bump_is_invisible_until_flushed() {
        with_registry(|| {
            bump(Counter::IndexProbes);
            bump_by(Counter::IndexProbes, 4);
            assert_eq!(counter(Counter::IndexProbes), 0);
            flush_thread();
            assert_eq!(counter(Counter::IndexProbes), 5);
            flush_thread();
            assert_eq!(counter(Counter::IndexProbes), 5);
        });
    }

    #[test]
    fn disabled_mode_records_nothing() {
        with_registry(|| {
            set_mode(TelemetryMode::Off);
            bump(Counter::ProbeHits);
            flush_thread();
            observe(Hist::UpdateLatency, 123);
            gauge_set(Gauge::EpochLag, 7);
            set_mode(TelemetryMode::On);
            assert_eq!(counter(Counter::ProbeHits), 0);
            assert_eq!(hist_snapshot(Hist::UpdateLatency).count, 0);
            assert_eq!(gauge(Gauge::EpochLag), 0);
        });
    }

    #[test]
    fn span_records_phase_and_cancel_suppresses() {
        with_registry(|| {
            {
                let _span = span_if(true, Phase::Fixpoint);
            }
            {
                let mut span = span_if(true, Phase::Fixpoint);
                span.cancel();
            }
            {
                let _span = span_if(false, Phase::Rewrite);
            }
            let (count, _) = phase_totals(Phase::Fixpoint);
            assert_eq!(count, 1);
            assert_eq!(phase_totals(Phase::Rewrite).0, 0);
        });
    }

    #[test]
    fn gauges_track_adds_and_sets() {
        with_registry(|| {
            gauge_add(Gauge::UpdateQueueDepth, 2);
            gauge_add(Gauge::UpdateQueueDepth, -1);
            assert_eq!(gauge(Gauge::UpdateQueueDepth), 1);
            gauge_set(Gauge::EpochLag, 3);
            assert_eq!(gauge(Gauge::EpochLag), 3);
        });
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let mut snap = HistSnapshot {
            buckets: [0; BUCKET_COUNT],
            sum_nanos: 0,
            count: 0,
        };
        assert_eq!(snap.percentile_nanos(0.5), None);
        assert_eq!(snap.percentiles(), None);

        // 100 observations spread evenly over the first bucket (0..=10µs):
        // the median interpolates to the bucket midpoint.
        snap.buckets[0] = 100;
        snap.count = 100;
        assert_eq!(snap.percentile_nanos(0.5), Some(5_000));
        assert_eq!(snap.percentile_nanos(0.0), Some(100));
        assert_eq!(snap.percentile_nanos(1.0), Some(10_000));

        // Add 100 observations in the 1ms..=2.5ms bucket: the p50 sits at
        // the first bucket's upper bound and p95 inside the slower bucket.
        let slow = bucket_index(2_000_000);
        snap.buckets[slow] = 100;
        snap.count = 200;
        assert_eq!(snap.percentile_nanos(0.5), Some(10_000));
        let p95 = snap.percentile_nanos(0.95).unwrap();
        assert!(
            p95 > BUCKET_BOUNDS_NANOS[slow - 1] && p95 <= BUCKET_BOUNDS_NANOS[slow],
            "{p95}"
        );
    }

    #[test]
    fn percentiles_saturate_at_the_overflow_bucket() {
        let mut snap = HistSnapshot {
            buckets: [0; BUCKET_COUNT],
            sum_nanos: 0,
            count: 2,
        };
        snap.buckets[0] = 1;
        snap.buckets[BUCKET_COUNT - 1] = 1;
        assert_eq!(
            snap.percentile_nanos(0.99),
            Some(BUCKET_BOUNDS_NANOS[BUCKET_BOUNDS_NANOS.len() - 1])
        );
    }

    #[test]
    fn slow_query_log_is_bounded_and_counted() {
        with_registry(|| {
            for index in 0..20 {
                slow_query(&format!("?- q{index}."), 1_000_000 * index);
            }
            let log = slow_queries();
            assert_eq!(log.len(), SLOW_LOG_CAPACITY);
            assert_eq!(log[0].0, "?- q4.");
            assert_eq!(counter(Counter::SlowQueries), 20);
        });
    }

    #[test]
    fn renders_mention_every_catalog_entry() {
        with_registry(|| {
            add(Counter::Queries, 2);
            observe(Hist::QueryLatency, 50_000);
            record_phase(Phase::Fixpoint, 1_000);
            let table = render_table();
            for (_, name) in COUNTERS {
                assert!(table.contains(name), "table missing counter {name}");
            }
            for (_, name) in PHASES {
                assert!(table.contains(name), "table missing phase {name}");
            }
            for (_, name) in GAUGES {
                assert!(table.contains(name), "table missing gauge {name}");
            }
            let prom = render_prometheus();
            assert!(prom.contains("pcs_queries_total 2"));
            assert!(prom.contains("pcs_query_latency_seconds_count 1"));
            assert!(prom.contains("le=\"+Inf\""));
            assert!(prom.contains("pcs_update_queue_depth"));
        });
    }
}
