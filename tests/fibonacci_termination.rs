//! Integration test for Example 1.2 / 4.4 (Tables 1 and 2): pushing the
//! predicate constraint `$2 >= 1` turns a diverging Magic Templates
//! evaluation into a terminating one, without losing answers.

use pushing_constraint_selections::prelude::*;

fn constrained_fib(target: i64) -> Program {
    parse_program(&format!(
        "r1: fib(0, 1).\n\
         r2: fib(1, 1).\n\
         r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), X1 >= 1, fib(N - 2, X2), X2 >= 1.\n\
         ?- fib(N, {target}).",
    ))
    .unwrap()
}

fn evaluate_magic(program: &Program, cap: usize) -> (Termination, usize, usize) {
    let magic = magic_rewrite(program, &MagicOptions::full_sips()).unwrap();
    let result = Evaluator::new(
        &magic.program,
        EvalOptions {
            limits: EvalLimits::capped(cap),
            trace: false,
            ..EvalOptions::default()
        },
    )
    .evaluate(&Database::new());
    let answers = result.answers(magic.program.query().unwrap()).len();
    (result.termination, answers, result.stats.constraint_facts)
}

#[test]
fn plain_magic_fibonacci_diverges_and_generates_constraint_facts() {
    // Table 1: the evaluation hits the iteration cap and has generated
    // constraint facts for the magic predicate.
    let (termination, answers, constraint_facts) = evaluate_magic(&programs::fibonacci(5), 12);
    assert_eq!(termination, Termination::IterationLimit);
    assert!(constraint_facts > 0, "magic fib generates constraint facts");
    // The answer N = 4 is nevertheless found before the cap (paper: seventh
    // iteration).
    assert_eq!(answers, 1);
}

#[test]
fn constrained_magic_fibonacci_terminates_with_the_answer() {
    // Table 2: with $2 >= 1 pushed into the recursive rule, the evaluation
    // reaches a fixpoint and answers N = 4.
    let (termination, answers, _) = evaluate_magic(&constrained_fib(5), 100);
    assert_eq!(termination, Termination::Fixpoint);
    assert_eq!(answers, 1);
}

#[test]
fn constrained_magic_fibonacci_answers_no_for_non_fibonacci_targets() {
    // ?- fib(N, 6): terminates and answers "no" (Example 4.4).
    let (termination, answers, _) = evaluate_magic(&constrained_fib(6), 100);
    assert_eq!(termination, Termination::Fixpoint);
    assert_eq!(answers, 0);
}

#[test]
fn tiny_caps_bound_the_diverging_fibonacci_inside_an_iteration() {
    // Regression: the fact and derivation caps must stop a round
    // mid-iteration.  They used to be checked only at rule-round
    // boundaries, so the diverging Table 1 evaluation could overshoot a
    // tiny cap by the size of whatever its current round derived.  The
    // caps are exact in sequential and in parallel evaluation alike.
    let magic = magic_rewrite(&programs::fibonacci(5), &MagicOptions::full_sips()).unwrap();
    for threads in [1, 4] {
        let facts_capped = EvalOptions {
            limits: EvalLimits {
                max_facts: 25,
                ..EvalLimits::default()
            },
            ..EvalOptions::default()
        }
        .with_threads(threads)
        .with_min_parallel_work(0);
        let result = Evaluator::new(&magic.program, facts_capped).evaluate(&Database::new());
        assert_eq!(result.termination, Termination::FactLimit);
        assert_eq!(result.total_facts(), 25, "threads = {threads}");

        let derivations_capped = EvalOptions {
            limits: EvalLimits {
                max_derivations: 40,
                ..EvalLimits::default()
            },
            ..EvalOptions::default()
        }
        .with_threads(threads)
        .with_min_parallel_work(0);
        let result = Evaluator::new(&magic.program, derivations_capped).evaluate(&Database::new());
        assert_eq!(result.termination, Termination::DerivationLimit);
        assert_eq!(result.stats.total_derivations(), 40, "threads = {threads}");
    }
}

#[test]
fn table2_terminates_within_the_papers_iteration_count_ballpark() {
    let magic = magic_rewrite(&constrained_fib(5), &MagicOptions::full_sips()).unwrap();
    let result =
        Evaluator::new(&magic.program, EvalOptions::traced(100)).evaluate(&Database::new());
    assert!(result.termination.is_fixpoint());
    // The paper's Table 2 terminates after 8 iterations (plus the empty
    // fixpoint round); allow a small margin for engine scheduling details.
    assert!(
        result.stats.iterations.len() <= 12,
        "took {} iterations",
        result.stats.iterations.len()
    );
}
