//! Integration tests: query equivalence of the rewritten programs
//! (Theorems 4.3, 4.6 and the correctness side of Section 7) across crates.

use pushing_constraint_selections::prelude::*;

/// Evaluates a program under a strategy and returns the rendered answer set
/// (sorted), so answer sets can be compared across rewritings that rename the
/// query predicate.
fn answers(program: &Program, strategy: Strategy, db: &Database) -> Vec<String> {
    let optimized = Optimizer::new(program.clone())
        .strategy(strategy)
        .optimize()
        .expect("optimization succeeds");
    let result = optimized.evaluate(db);
    let query = optimized.program.query().expect("query present");
    let mut rendered: Vec<String> = result
        .answers(query)
        .iter()
        .map(|fact| {
            // Strip the (possibly adorned) predicate name so that answers are
            // comparable across strategies.
            let text = fact.to_string();
            text.split_once('(')
                .map(|(_, rest)| rest.to_string())
                .unwrap_or(text)
        })
        .collect();
    rendered.sort();
    rendered.dedup();
    rendered
}

fn all_strategies() -> Vec<Strategy> {
    vec![
        Strategy::None,
        Strategy::ConstraintRewrite,
        Strategy::MagicOnly,
        Strategy::Optimal,
        Strategy::Sequence(vec![Step::Qrp, Step::Magic]),
        Strategy::Sequence(vec![Step::Magic, Step::Qrp]),
        Strategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

#[test]
fn flights_answers_agree_across_all_strategies() {
    let program = programs::flights();
    let db = programs::flights_database(6, 15);
    let baseline = answers(&program, Strategy::None, &db);
    assert!(
        !baseline.is_empty(),
        "query should have answers on this EDB"
    );
    for strategy in all_strategies() {
        let got = answers(&program, strategy.clone(), &db);
        assert_eq!(got, baseline, "strategy {strategy:?} changed the answers");
    }
}

#[test]
fn example_41_answers_agree_across_all_strategies() {
    let program = programs::example_41();
    let db = programs::example_41_database(20);
    let baseline = answers(&program, Strategy::None, &db);
    assert!(!baseline.is_empty());
    for strategy in all_strategies() {
        assert_eq!(answers(&program, strategy.clone(), &db), baseline);
    }
}

#[test]
fn example_71_and_72_answers_agree_across_orderings() {
    for (program, db) in [
        (
            programs::example_71(),
            programs::example_7x_database(15, 12),
        ),
        (
            programs::example_72(),
            programs::example_7x_database(15, 12),
        ),
    ] {
        let baseline = answers(&program, Strategy::None, &db);
        for strategy in all_strategies() {
            assert_eq!(answers(&program, strategy.clone(), &db), baseline);
        }
    }
}

#[test]
fn example_42_rewrite_is_equivalent_and_cheaper() {
    let program = programs::example_42();
    let db = programs::example_42_database(25);
    let baseline = answers(&program, Strategy::None, &db);
    let rewritten = answers(&program, Strategy::ConstraintRewrite, &db);
    assert_eq!(baseline, rewritten);

    let base_eval = Optimizer::new(program.clone())
        .strategy(Strategy::None)
        .optimize()
        .unwrap()
        .evaluate(&db);
    let opt_eval = Optimizer::new(program)
        .strategy(Strategy::ConstraintRewrite)
        .optimize()
        .unwrap()
        .evaluate(&db);
    assert!(opt_eval.count_for(&Pred::new("a")) <= base_eval.count_for(&Pred::new("a")));
}

#[test]
fn rewritten_flights_never_materializes_irrelevant_flights() {
    // The headline claim of Example 4.3, end to end.
    let program = programs::flights();
    let db = programs::flights_database(8, 40);
    let optimized = Optimizer::new(program)
        .strategy(Strategy::ConstraintRewrite)
        .optimize()
        .unwrap();
    let result = optimized.evaluate(&db);
    assert!(result.termination.is_fixpoint());
    assert!(result.only_ground_facts(), "Theorem 4.4: only ground facts");
    for fact in result.facts_for(&Pred::new("flight")) {
        let values = fact.ground_values().expect("ground");
        let time = values[2].as_num().unwrap();
        let cost = values[3].as_num().unwrap();
        assert!(
            !(time > 240.into() && cost > 150.into()),
            "irrelevant fact {fact}"
        );
    }
}
