//! Property-based integration tests (Theorem 4.4 and query equivalence) on
//! randomly generated EDBs.

use proptest::prelude::*;

use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

fn edge_db(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for (x, y) in edges {
        db.add_ground("b1", vec![Value::num(*x), Value::num(*y)]);
        db.add_ground("b2", vec![Value::num(*y), Value::num(*x + *y)]);
    }
    db
}

fn answer_strings(program: &Program, strategy: OptStrategy, db: &Database) -> Vec<String> {
    let optimized = Optimizer::new(program.clone())
        .strategy(strategy)
        .optimize()
        .unwrap();
    let result = optimized.evaluate(db);
    let query = optimized.program.query().unwrap();
    let mut rendered: Vec<String> = result
        .answers(query)
        .iter()
        .map(|f| {
            let text = f.to_string();
            text.split_once('(')
                .map(|(_, rest)| rest.to_string())
                .unwrap_or(text)
        })
        .collect();
    rendered.sort();
    rendered.dedup();
    rendered
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Theorem 4.3/4.4: on arbitrary ground EDBs the rewritten Example 7.1
    /// program returns the same answers as the original, computes only
    /// ground facts, and computes no more facts.
    #[test]
    fn constraint_rewrite_preserves_answers_on_random_edbs(
        edges in proptest::collection::vec((0i64..12, 0i64..12), 1..14)
    ) {
        let program = programs::example_71();
        let db = edge_db(&edges);
        let baseline = answer_strings(&program, OptStrategy::None, &db);
        let rewritten = answer_strings(&program, OptStrategy::ConstraintRewrite, &db);
        prop_assert_eq!(baseline, rewritten);

        let opt = Optimizer::new(program)
            .strategy(OptStrategy::ConstraintRewrite)
            .optimize()
            .unwrap();
        let eval = opt.evaluate(&db);
        prop_assert!(eval.only_ground_facts());
        prop_assert!(eval.termination.is_fixpoint());
    }

    /// The optimal sequence (Theorem 7.10) never computes more facts than
    /// applying magic first, and both agree with the unoptimized answers.
    #[test]
    fn optimal_sequence_dominates_magic_first_on_random_edbs(
        edges in proptest::collection::vec((0i64..10, 0i64..10), 1..10)
    ) {
        let program = programs::example_71();
        let db = edge_db(&edges);
        let baseline = answer_strings(&program, OptStrategy::None, &db);

        let optimal = Optimizer::new(program.clone())
            .strategy(OptStrategy::Optimal)
            .optimize()
            .unwrap();
        let magic_first = Optimizer::new(program.clone())
            .strategy(OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]))
            .optimize()
            .unwrap();
        let optimal_eval = optimal.evaluate(&db);
        let magic_first_eval = magic_first.evaluate(&db);
        prop_assert!(optimal_eval.total_facts() <= magic_first_eval.total_facts());

        prop_assert_eq!(answer_strings(&program, OptStrategy::Optimal, &db), baseline.clone());
        prop_assert_eq!(
            answer_strings(
                &program,
                OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
                &db
            ),
            baseline
        );
    }
}
