//! Differential tests for the static join planner.
//!
//! Precompiled join plans are the default execution mode; the dynamic
//! per-iteration ordering survives as the `PCS_PLAN=off` toggle.  The plan
//! must be *transparent*: for every rewriting strategy, both join cores,
//! sequential and 4-thread evaluation, and both storage layouts, evaluating
//! with `plan = true` must be bit-for-bit identical to `plan = false` —
//! same relations, same termination, same per-iteration derivation/new/
//! subsumed/delta statistics.  The statistics comparison is the strong half:
//! a plan that visits body literals in a different order but enumerates a
//! different *set* of candidate tuples, or an existence shortcut that prunes
//! a derivation the dynamic path counts, would show up here even when the
//! final relations agree.
//!
//! A second battery pins the planned evaluators against the naive reference
//! interpreter (`pcs_engine::naive`), which shares nothing with the planner:
//! with plans forced on, every production configuration must still compute a
//! materialization denotationally identical to the oracle's.

use std::collections::{BTreeMap, BTreeSet};

use proptest::prelude::*;

use pushing_constraint_selections::engine::naive::{self, NaiveResult};
use pushing_constraint_selections::engine::EvalResult;
use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the
// optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

fn all_strategies() -> Vec<OptStrategy> {
    vec![
        OptStrategy::None,
        OptStrategy::ConstraintRewrite,
        OptStrategy::MagicOnly,
        OptStrategy::Optimal,
        OptStrategy::Sequence(vec![Step::Qrp, Step::Magic]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Qrp]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

/// Every evaluator configuration the planner must be transparent for: both
/// join cores, sequential and 4-thread, columnar and row-wise storage.
fn evaluator_rows() -> Vec<(String, EvalOptions)> {
    let mut rows = Vec::new();
    for (core, base) in [
        ("indexed", EvalOptions::indexed()),
        ("legacy", EvalOptions::legacy()),
    ] {
        for threads in [1, 4] {
            for columnar in [true, false] {
                let layout = if columnar { "columnar" } else { "row-wise" };
                rows.push((
                    format!("{core} {threads}-thread {layout}"),
                    base.clone()
                        .with_columnar(columnar)
                        .with_threads(threads)
                        .with_min_parallel_work(0),
                ));
            }
        }
    }
    rows
}

/// Renders every relation as a sorted list of fact strings, keyed by
/// predicate, so the stored fact sets of two evaluations can be compared
/// independently of derivation order.
fn rendered_relations(result: &EvalResult) -> BTreeMap<String, Vec<String>> {
    result
        .relations
        .iter()
        .map(|(pred, relation)| {
            let mut facts: Vec<String> = relation.iter().map(|f| f.to_string()).collect();
            facts.sort();
            (pred.to_string(), facts)
        })
        .collect()
}

/// Asserts the planned evaluation is bit-for-bit identical to the dynamic
/// one: relations, termination, and every per-iteration statistic.
fn assert_identical(dynamic: &EvalResult, planned: &EvalResult, context: &str) {
    assert_eq!(
        dynamic.termination, planned.termination,
        "termination diverged {context}"
    );
    assert_eq!(
        rendered_relations(dynamic),
        rendered_relations(planned),
        "stored relations diverged {context}"
    );
    assert_eq!(
        dynamic.stats.facts_per_predicate, planned.stats.facts_per_predicate,
        "stats-level fact counts diverged {context}"
    );
    assert_eq!(
        dynamic.stats.constraint_facts, planned.stats.constraint_facts,
        "constraint fact counts diverged {context}"
    );
    assert_eq!(
        dynamic.stats.iterations.len(),
        planned.stats.iterations.len(),
        "iteration counts diverged {context}"
    );
    for (i, (a, b)) in dynamic
        .stats
        .iterations
        .iter()
        .zip(&planned.stats.iterations)
        .enumerate()
    {
        assert_eq!(
            (a.derivations, a.new_facts, a.subsumed, a.delta_facts),
            (b.derivations, b.new_facts, b.subsumed, b.delta_facts),
            "iteration {i} statistics diverged {context}"
        );
    }
}

/// Evaluates `program` against `db` under every strategy and evaluator
/// configuration, once with precompiled plans and once with the dynamic
/// ordering, and asserts the two runs are identical down to the
/// per-iteration statistics.
fn assert_plan_transparent(program: &Program, db: &Database) {
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        for (label, options) in evaluator_rows() {
            let dynamic = optimized.evaluate_with(db, options.clone().with_plan(false));
            let planned = optimized.evaluate_with(db, options.with_plan(true));
            assert_identical(
                &dynamic,
                &planned,
                &format!("between plan-off and plan-on under {strategy:?} with the {label} core"),
            );
        }
    }
}

/// Asserts the production result and the oracle result store the same
/// denotations, predicate by predicate.
fn assert_matches_oracle(production: &EvalResult, oracle: &NaiveResult, context: &str) {
    assert_eq!(
        production.termination.is_fixpoint(),
        oracle.termination.is_fixpoint(),
        "termination diverged {context}"
    );
    let preds: BTreeSet<&Pred> = production
        .relations
        .keys()
        .chain(oracle.relations.keys())
        .collect();
    for pred in preds {
        let prod_facts = production.facts_for(pred);
        let oracle_facts = oracle.facts_for(pred);
        for fact in &prod_facts {
            assert!(
                oracle_facts.iter().any(|o| o.subsumes(fact)),
                "production fact `{fact}` of `{pred}` is not covered by the oracle {context}\n\
                 oracle stores: {oracle_facts:?}"
            );
        }
        for fact in oracle_facts {
            assert!(
                prod_facts.iter().any(|p| p.subsumes(fact)),
                "oracle fact `{fact}` of `{pred}` is not covered by the production run {context}\n\
                 production stores: {prod_facts:?}"
            );
        }
    }
}

/// Runs every strategy and evaluator configuration with plans forced on
/// against the naive oracle.
fn assert_planned_conformance(program: &Program, db: &Database) {
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        let oracle = naive::evaluate(&optimized.program, db, &EvalLimits::default());
        assert!(
            oracle.termination.is_fixpoint(),
            "oracle diverged under {strategy:?}; pick a terminating workload"
        );
        for (label, options) in evaluator_rows() {
            let production = optimized.evaluate_with(db, options.with_plan(true));
            assert_matches_oracle(
                &production,
                &oracle,
                &format!("under {strategy:?} with the planned {label} core"),
            );
        }
    }
}

#[test]
fn plans_are_transparent_on_the_deterministic_paper_workloads() {
    for (program, db) in [
        (programs::flights(), programs::flights_database(6, 15)),
        (programs::example_41(), programs::example_41_database(20)),
        (
            programs::example_71(),
            programs::example_7x_database(15, 12),
        ),
        (
            programs::example_72(),
            programs::example_7x_database(15, 12),
        ),
    ] {
        assert_plan_transparent(&program, &db);
    }
}

#[test]
fn plans_are_transparent_on_constraint_fact_edbs() {
    // Constraint facts disable the existence shortcut for their relation
    // (a fully bound probe can still match infinitely many points); this
    // workload proves the gate by mixing ground and constraint facts.
    let mut db = programs::example_7x_database(8, 6);
    assert!(db.add_constrained(
        "b1",
        2,
        Conjunction::from_atoms([
            Atom::var_ge(Var::position(1), 0),
            Atom::var_le(Var::position(1), 2),
            Atom::var_eq(Var::position(2), 1_000),
        ]),
    ));
    assert_plan_transparent(&programs::example_71(), &db);
}

#[test]
fn planned_cores_conform_to_the_oracle() {
    for (program, db) in [
        (programs::flights(), programs::flights_database(5, 6)),
        (programs::example_41(), programs::example_41_database(12)),
        (programs::example_71(), programs::example_7x_database(8, 6)),
        (programs::example_72(), programs::example_7x_database(8, 6)),
    ] {
        assert_planned_conformance(&program, &db);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn plans_are_transparent_on_random_7x_edbs(
        edges in proptest::collection::vec((0i64..12, 0i64..12), 1..14)
    ) {
        let mut db = Database::new();
        for (x, y) in &edges {
            db.add_ground("b1", vec![Value::num(*x), Value::num(*y)]);
            db.add_ground("b2", vec![Value::num(*y), Value::num(*x + *y)]);
        }
        assert_plan_transparent(&programs::example_71(), &db);
        assert_plan_transparent(&programs::example_72(), &db);
    }

    #[test]
    fn plans_are_transparent_on_random_flight_networks(
        legs in proptest::collection::vec(
            (0u8..8, 0u8..8, 30i64..240, 20i64..200),
            1..12
        )
    ) {
        // Acyclic (lower- to higher-numbered city) so every strategy
        // terminates, on top of the deterministic madison–seattle chain.
        let mut db = programs::flights_database(4, 0);
        for (a, b, time, cost) in &legs {
            if a == b {
                continue;
            }
            db.add_ground(
                "singleleg",
                vec![
                    Value::sym(format!("c{}", a.min(b))),
                    Value::sym(format!("c{}", a.max(b))),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            );
        }
        assert_plan_transparent(&programs::flights(), &db);
    }
}
