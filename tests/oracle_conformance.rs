//! Conformance of the production evaluators against the naive reference
//! interpreter (`pcs_engine::naive`).
//!
//! The oracle shares nothing with the production join cores beyond the
//! constraint algebra and fact normalization: no indexes, no semi-naive
//! deltas, no body reordering, no threads, no subsumption shortcuts.  For
//! every rewriting strategy, on deterministic, random, and constraint-fact
//! EDBs, both production cores (sequential and 4-thread) must compute a
//! materialization *denotationally identical* to the oracle's:
//!
//! * the same termination behavior (all workloads here reach a fixpoint),
//! * per predicate, every production fact is subsumed by a stored oracle
//!   fact and vice versa (mutual single-fact coverage — both sides insert
//!   with subsumption, so this is equality of the stored denotations), and
//! * on evaluations that compute only ground facts, the stored fact sets
//!   are *identical* (ground facts have one canonical rendering).

use std::collections::BTreeSet;

use proptest::prelude::*;

use pushing_constraint_selections::engine::naive::{self, NaiveResult};
use pushing_constraint_selections::engine::EvalResult;
use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the
// optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

fn all_strategies() -> Vec<OptStrategy> {
    vec![
        OptStrategy::None,
        OptStrategy::ConstraintRewrite,
        OptStrategy::MagicOnly,
        OptStrategy::Optimal,
        OptStrategy::Sequence(vec![Step::Qrp, Step::Magic]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Qrp]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

/// Asserts the production result and the oracle result store the same
/// denotations, predicate by predicate.
fn assert_matches_oracle(production: &EvalResult, oracle: &NaiveResult, context: &str) {
    assert_eq!(
        production.termination.is_fixpoint(),
        oracle.termination.is_fixpoint(),
        "termination diverged {context}"
    );
    let preds: BTreeSet<&Pred> = production
        .relations
        .keys()
        .chain(oracle.relations.keys())
        .collect();
    for pred in preds {
        let prod_facts = production.facts_for(pred);
        let oracle_facts = oracle.facts_for(pred);
        for fact in &prod_facts {
            assert!(
                oracle_facts.iter().any(|o| o.subsumes(fact)),
                "production fact `{fact}` of `{pred}` is not covered by the oracle {context}\n\
                 oracle stores: {oracle_facts:?}"
            );
        }
        for fact in oracle_facts {
            assert!(
                prod_facts.iter().any(|p| p.subsumes(fact)),
                "oracle fact `{fact}` of `{pred}` is not covered by the production run {context}\n\
                 production stores: {prod_facts:?}"
            );
        }
        // Ground-only relations have canonical renderings: require the
        // exact same stored set, not just mutual coverage.
        let ground_only =
            prod_facts.iter().all(Fact::is_ground) && oracle_facts.iter().all(Fact::is_ground);
        if ground_only {
            let mut a: Vec<String> = prod_facts.iter().map(ToString::to_string).collect();
            let mut b: Vec<String> = oracle_facts.iter().map(ToString::to_string).collect();
            a.sort();
            b.sort();
            assert_eq!(a, b, "ground facts of `{pred}` diverged {context}");
        }
    }
}

/// Every production configuration under test: both join cores, sequential
/// and 4-thread, each with the columnar ground store forced on and forced
/// off.  Interning is unconditional, so together these rows prove that
/// neither the interned representation nor the storage layout changes any
/// answer.
fn production_options() -> Vec<(String, EvalOptions)> {
    let mut rows = Vec::new();
    for (core, base) in [
        ("indexed", EvalOptions::indexed()),
        ("legacy", EvalOptions::legacy()),
    ] {
        for threads in [1, 4] {
            for columnar in [true, false] {
                let layout = if columnar { "columnar" } else { "row-wise" };
                rows.push((
                    format!("{core} {threads}-thread {layout}"),
                    base.clone()
                        .with_columnar(columnar)
                        .with_threads(threads)
                        .with_min_parallel_work(0),
                ));
            }
        }
    }
    rows
}

/// Runs every strategy with both production cores (sequential and 4-thread,
/// columnar and row-wise storage) against the oracle.
fn assert_conformance(program: &Program, db: &Database) {
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        let oracle = naive::evaluate(&optimized.program, db, &EvalLimits::default());
        assert!(
            oracle.termination.is_fixpoint(),
            "oracle diverged under {strategy:?}; pick a terminating workload"
        );
        for (label, options) in production_options() {
            let production = Evaluator::new(&optimized.program, options).evaluate(db);
            assert_matches_oracle(
                &production,
                &oracle,
                &format!("under {strategy:?} with the {label} core"),
            );
        }
    }
}

#[test]
fn production_cores_conform_on_the_deterministic_paper_workloads() {
    for (program, db) in [
        (programs::flights(), programs::flights_database(5, 6)),
        (programs::example_41(), programs::example_41_database(12)),
        (programs::example_71(), programs::example_7x_database(8, 6)),
        (programs::example_72(), programs::example_7x_database(8, 6)),
    ] {
        assert_conformance(&program, &db);
    }
}

#[test]
fn production_cores_conform_on_constraint_fact_edbs() {
    let mut db = programs::example_7x_database(6, 5);
    assert!(db.add_constrained(
        "b1",
        2,
        Conjunction::from_atoms([
            Atom::var_ge(Var::position(1), 0),
            Atom::var_le(Var::position(1), 2),
            Atom::var_eq(Var::position(2), 1_000),
        ]),
    ));
    db.add_facts_str("b1(1, 1000).").unwrap();
    assert_conformance(&programs::example_71(), &db);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn production_cores_conform_on_random_7x_edbs(
        edges in proptest::collection::vec((0i64..8, 0i64..8), 1..8)
    ) {
        let mut db = Database::new();
        for (x, y) in &edges {
            db.add_ground("b1", vec![Value::num(*x), Value::num(*y)]);
            db.add_ground("b2", vec![Value::num(*y), Value::num(*x + *y)]);
        }
        assert_conformance(&programs::example_71(), &db);
        assert_conformance(&programs::example_72(), &db);
    }

    #[test]
    fn production_cores_conform_on_random_flight_networks(
        legs in proptest::collection::vec(
            (0u8..5, 0u8..5, 30i64..240, 20i64..200),
            1..7
        )
    ) {
        // Acyclic (lower- to higher-numbered city) so every strategy
        // terminates, on top of the deterministic madison–seattle chain.
        let mut db = programs::flights_database(4, 0);
        for (a, b, time, cost) in &legs {
            if a == b {
                continue;
            }
            db.add_ground(
                "singleleg",
                vec![
                    Value::sym(format!("c{}", a.min(b))),
                    Value::sym(format!("c{}", a.max(b))),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            );
        }
        assert_conformance(&programs::flights(), &db);
    }
}
