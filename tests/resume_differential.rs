//! Differential tests for the resumable fixpoint.
//!
//! The contract behind `pcs-service` sessions: for every rewriting strategy
//! and both join cores, *(materialize base; insert update batch; resume)*
//! stores exactly the relations a from-scratch evaluation of base + updates
//! stores, with the same per-predicate fact counts and the same
//! termination.  Randomized EDBs and update batches (seeded, reproducible)
//! probe the property beyond the deterministic paper workloads, and a
//! 4-thread resume must be bit-for-bit identical to the sequential one.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pushing_constraint_selections::engine::EvalResult;
use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the
// optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

fn all_strategies() -> Vec<OptStrategy> {
    vec![
        OptStrategy::None,
        OptStrategy::ConstraintRewrite,
        OptStrategy::MagicOnly,
        OptStrategy::Optimal,
        OptStrategy::Sequence(vec![Step::Qrp, Step::Magic]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Qrp]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

/// Renders every relation as a sorted list of fact strings, keyed by
/// predicate, so stored fact sets can be compared independently of
/// derivation order.
fn rendered_relations(result: &EvalResult) -> BTreeMap<String, Vec<String>> {
    result
        .relations
        .iter()
        .map(|(pred, relation)| {
            let mut facts: Vec<String> = relation.iter().map(|f| f.to_string()).collect();
            facts.sort();
            (pred.to_string(), facts)
        })
        .collect()
}

/// For every strategy and both join cores: materialize `base`, resume with
/// `updates`, and require relations, fact counts, and termination identical
/// to evaluating base + updates from scratch.  Also requires the resumed
/// evaluation to be bit-for-bit deterministic under a 4-thread worker pool.
fn assert_resume_matches_scratch(program: &Program, base: &Database, updates: &[Fact]) {
    let mut full = base.clone();
    for fact in updates {
        full.add(fact.clone());
    }
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        for options in [
            EvalOptions::indexed().with_threads(1),
            EvalOptions::legacy().with_threads(1),
        ] {
            let evaluator = Evaluator::new(&optimized.program, options.clone());
            let scratch = evaluator.evaluate(&full);
            let materialized = evaluator.evaluate(base);
            let resumed = evaluator.resume(materialized.relations, updates.to_vec());
            let context = format!(
                "under {strategy:?} with {} core",
                if options.index { "indexed" } else { "legacy" }
            );
            assert_eq!(
                resumed.termination, scratch.termination,
                "termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&resumed),
                rendered_relations(&scratch),
                "stored relations diverged {context}"
            );
            assert_eq!(
                resumed.stats.facts_per_predicate, scratch.stats.facts_per_predicate,
                "fact counts diverged {context}"
            );
            assert_eq!(
                resumed.stats.constraint_facts, scratch.stats.constraint_facts,
                "constraint fact counts diverged {context}"
            );

            // Parallel resume is bit-for-bit identical to sequential resume.
            let parallel_evaluator = Evaluator::new(
                &optimized.program,
                options.clone().with_threads(4).with_min_parallel_work(0),
            );
            let parallel = parallel_evaluator.resume(
                parallel_evaluator.evaluate(base).relations,
                updates.to_vec(),
            );
            assert_eq!(
                resumed.termination, parallel.termination,
                "parallel resume termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&resumed),
                rendered_relations(&parallel),
                "parallel resume relations diverged {context}"
            );
            assert_eq!(
                resumed.stats.iterations.len(),
                parallel.stats.iterations.len(),
                "parallel resume iteration counts diverged {context}"
            );
            for (i, (a, b)) in resumed
                .stats
                .iterations
                .iter()
                .zip(&parallel.stats.iterations)
                .enumerate()
            {
                assert_eq!(
                    (a.derivations, a.new_facts, a.subsumed, a.delta_facts),
                    (b.derivations, b.new_facts, b.subsumed, b.delta_facts),
                    "parallel resume iteration {i} statistics diverged {context}"
                );
            }
        }
    }
}

/// New flight legs as update facts.
fn leg_updates(legs: &[(&str, &str, i64, i64)]) -> Vec<Fact> {
    legs.iter()
        .map(|(src, dst, time, cost)| {
            Fact::ground(
                "singleleg",
                vec![
                    Value::sym(*src),
                    Value::sym(*dst),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            )
        })
        .collect()
}

#[test]
fn resume_matches_scratch_on_the_flights_workload() {
    let program = programs::flights();
    let base = programs::flights_database(6, 10);
    let updates = leg_updates(&[
        ("madison", "seattle", 45, 30),
        ("city2", "newhub", 40, 35),
        ("newhub", "seattle", 55, 60),
        // Already present in the base database: must be subsumed.
        ("madison", "seattle", 200, 90),
    ]);
    assert_resume_matches_scratch(&program, &base, &updates);
}

#[test]
fn resume_matches_scratch_on_the_7x_workloads() {
    let base = programs::example_7x_database(12, 10);
    let updates = vec![
        Fact::ground("b1", vec![Value::num(3), Value::num(10_001)]),
        Fact::ground("b1", vec![Value::num(50), Value::num(10_004)]),
        Fact::ground("b2", vec![Value::num(10_010), Value::num(10_011)]),
    ];
    assert_resume_matches_scratch(&programs::example_71(), &base, &updates);
    assert_resume_matches_scratch(&programs::example_72(), &base, &updates);
}

#[test]
fn resume_matches_scratch_with_constraint_fact_updates() {
    // Constraint facts can arrive as updates too (e.g. "every leg out of a
    // hub costs at least 70"): the resumed subsumption and projection paths
    // must agree with the from-scratch ones.
    let program = programs::example_71();
    let base = programs::example_7x_database(8, 6);
    let updates = parse_facts(
        "b1(X, 10001) :- X >= 100, X <= 102.\n\
         b2(10006, 10007).",
    )
    .unwrap();
    assert_resume_matches_scratch(&program, &base, &updates);
}

#[test]
fn repeated_resumes_converge_like_one_scratch_run() {
    // Apply three update batches one after another (resume-of-resume) and
    // compare against one evaluation of everything.
    let program = programs::flights();
    let base = programs::flights_database(5, 5);
    let batches = [
        leg_updates(&[("madison", "hubx", 30, 30)]),
        leg_updates(&[("hubx", "seattle", 40, 40)]),
        leg_updates(&[("city1", "hubx", 25, 45), ("madison", "hubx", 30, 30)]),
    ];
    let mut full = base.clone();
    for batch in &batches {
        for fact in batch {
            full.add(fact.clone());
        }
    }
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        let evaluator = optimized.evaluator();
        let scratch = evaluator.evaluate(&full);
        let mut rolling = evaluator.evaluate(&base);
        for batch in &batches {
            rolling = evaluator.resume(rolling.relations, batch.clone());
        }
        assert_eq!(rolling.termination, scratch.termination);
        assert_eq!(
            rendered_relations(&rolling),
            rendered_relations(&scratch),
            "rolling resume diverged under {strategy:?}"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn resume_matches_scratch_on_random_splits(
        legs in proptest::collection::vec(
            (0u8..6, 0u8..6, 30i64..240, 20i64..200),
            2..10
        ),
        split in 1usize..9
    ) {
        // A random acyclic leg set, split at a random point into base facts
        // and an update batch.
        let mut base = programs::flights_database(4, 0);
        let mut updates = Vec::new();
        for (i, (a, b, time, cost)) in legs.iter().enumerate() {
            if a == b {
                continue;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            let fact = Fact::ground(
                "singleleg",
                vec![
                    Value::sym(format!("c{lo}")),
                    Value::sym(format!("c{hi}")),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            );
            if i < split % legs.len() {
                base.add(fact);
            } else {
                updates.push(fact);
            }
        }
        assert_resume_matches_scratch(&programs::flights(), &base, &updates);
    }
}
