//! Differential tests for the resumable fixpoint and for incremental
//! retraction.
//!
//! The contract behind `pcs-service` sessions: for every rewriting strategy
//! and both join cores, *(materialize base; insert update batch; resume)*
//! stores exactly the relations a from-scratch evaluation of base + updates
//! stores, with the same per-predicate fact counts and the same
//! termination.  Randomized EDBs and update batches (seeded, reproducible)
//! probe the property beyond the deterministic paper workloads, and a
//! 4-thread resume must be bit-for-bit identical to the sequential one.
//!
//! The mixed-update differential extends the same contract to *arbitrary
//! interleavings* of insert and retract batches: however the extensional
//! database reached its final state, the maintained materialization must be
//! identical to evaluating the surviving EDB from scratch — including the
//! resurrection of facts a retracted constraint fact had subsumed at seed
//! time.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pushing_constraint_selections::engine::EvalResult;
use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the
// optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

/// Both join cores, each with the columnar ground store forced on and
/// forced off.  Interning is unconditional, so these rows prove the
/// maintained materialization is independent of the storage layout too.
fn core_options() -> Vec<EvalOptions> {
    vec![
        EvalOptions::indexed().with_columnar(true).with_threads(1),
        EvalOptions::indexed().with_columnar(false).with_threads(1),
        EvalOptions::legacy().with_columnar(true).with_threads(1),
        EvalOptions::legacy().with_columnar(false).with_threads(1),
    ]
}

/// Human-readable label for a `core_options()` row.
fn options_label(options: &EvalOptions) -> String {
    format!(
        "{} {}",
        if options.index { "indexed" } else { "legacy" },
        match options.columnar {
            Some(true) => "columnar",
            Some(false) => "row-wise",
            None => "default-layout",
        }
    )
}

fn all_strategies() -> Vec<OptStrategy> {
    vec![
        OptStrategy::None,
        OptStrategy::ConstraintRewrite,
        OptStrategy::MagicOnly,
        OptStrategy::Optimal,
        OptStrategy::Sequence(vec![Step::Qrp, Step::Magic]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Qrp]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

/// Renders every relation as a sorted list of fact strings, keyed by
/// predicate, so stored fact sets can be compared independently of
/// derivation order.
fn rendered_relations(result: &EvalResult) -> BTreeMap<String, Vec<String>> {
    result
        .relations
        .iter()
        .map(|(pred, relation)| {
            let mut facts: Vec<String> = relation.iter().map(|f| f.to_string()).collect();
            facts.sort();
            (pred.to_string(), facts)
        })
        .collect()
}

/// For every strategy and both join cores: materialize `base`, resume with
/// `updates`, and require relations, fact counts, and termination identical
/// to evaluating base + updates from scratch.  Also requires the resumed
/// evaluation to be bit-for-bit deterministic under a 4-thread worker pool.
fn assert_resume_matches_scratch(program: &Program, base: &Database, updates: &[Fact]) {
    let mut full = base.clone();
    for fact in updates {
        full.add(fact.clone());
    }
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        for options in core_options() {
            let evaluator = Evaluator::new(&optimized.program, options.clone());
            let scratch = evaluator.evaluate(&full);
            let materialized = evaluator.evaluate(base);
            let resumed = evaluator.resume(materialized.relations, updates.to_vec());
            let context = format!("under {strategy:?} with {} core", options_label(&options));
            assert_eq!(
                resumed.termination, scratch.termination,
                "termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&resumed),
                rendered_relations(&scratch),
                "stored relations diverged {context}"
            );
            assert_eq!(
                resumed.stats.facts_per_predicate, scratch.stats.facts_per_predicate,
                "fact counts diverged {context}"
            );
            assert_eq!(
                resumed.stats.constraint_facts, scratch.stats.constraint_facts,
                "constraint fact counts diverged {context}"
            );

            // Parallel resume is bit-for-bit identical to sequential resume.
            let parallel_evaluator = Evaluator::new(
                &optimized.program,
                options.clone().with_threads(4).with_min_parallel_work(0),
            );
            let parallel = parallel_evaluator.resume(
                parallel_evaluator.evaluate(base).relations,
                updates.to_vec(),
            );
            assert_eq!(
                resumed.termination, parallel.termination,
                "parallel resume termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&resumed),
                rendered_relations(&parallel),
                "parallel resume relations diverged {context}"
            );
            assert_eq!(
                resumed.stats.iterations.len(),
                parallel.stats.iterations.len(),
                "parallel resume iteration counts diverged {context}"
            );
            for (i, (a, b)) in resumed
                .stats
                .iterations
                .iter()
                .zip(&parallel.stats.iterations)
                .enumerate()
            {
                assert_eq!(
                    (a.derivations, a.new_facts, a.subsumed, a.delta_facts),
                    (b.derivations, b.new_facts, b.subsumed, b.delta_facts),
                    "parallel resume iteration {i} statistics diverged {context}"
                );
            }
        }
    }
}

/// New flight legs as update facts.
fn leg_updates(legs: &[(&str, &str, i64, i64)]) -> Vec<Fact> {
    legs.iter()
        .map(|(src, dst, time, cost)| {
            Fact::ground(
                "singleleg",
                vec![
                    Value::sym(*src),
                    Value::sym(*dst),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            )
        })
        .collect()
}

#[test]
fn resume_matches_scratch_on_the_flights_workload() {
    let program = programs::flights();
    let base = programs::flights_database(6, 10);
    let updates = leg_updates(&[
        ("madison", "seattle", 45, 30),
        ("city2", "newhub", 40, 35),
        ("newhub", "seattle", 55, 60),
        // Already present in the base database: must be subsumed.
        ("madison", "seattle", 200, 90),
    ]);
    assert_resume_matches_scratch(&program, &base, &updates);
}

#[test]
fn resume_matches_scratch_on_the_7x_workloads() {
    let base = programs::example_7x_database(12, 10);
    let updates = vec![
        Fact::ground("b1", vec![Value::num(3), Value::num(10_001)]),
        Fact::ground("b1", vec![Value::num(50), Value::num(10_004)]),
        Fact::ground("b2", vec![Value::num(10_010), Value::num(10_011)]),
    ];
    assert_resume_matches_scratch(&programs::example_71(), &base, &updates);
    assert_resume_matches_scratch(&programs::example_72(), &base, &updates);
}

#[test]
fn resume_matches_scratch_with_constraint_fact_updates() {
    // Constraint facts can arrive as updates too (e.g. "every leg out of a
    // hub costs at least 70"): the resumed subsumption and projection paths
    // must agree with the from-scratch ones.
    let program = programs::example_71();
    let base = programs::example_7x_database(8, 6);
    let updates = parse_facts(
        "b1(X, 10001) :- X >= 100, X <= 102.\n\
         b2(10006, 10007).",
    )
    .unwrap();
    assert_resume_matches_scratch(&program, &base, &updates);
}

#[test]
fn repeated_resumes_converge_like_one_scratch_run() {
    // Apply three update batches one after another (resume-of-resume) and
    // compare against one evaluation of everything.
    let program = programs::flights();
    let base = programs::flights_database(5, 5);
    let batches = [
        leg_updates(&[("madison", "hubx", 30, 30)]),
        leg_updates(&[("hubx", "seattle", 40, 40)]),
        leg_updates(&[("city1", "hubx", 25, 45), ("madison", "hubx", 30, 30)]),
    ];
    let mut full = base.clone();
    for batch in &batches {
        for fact in batch {
            full.add(fact.clone());
        }
    }
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        let evaluator = optimized.evaluator();
        let scratch = evaluator.evaluate(&full);
        let mut rolling = evaluator.evaluate(&base);
        for batch in &batches {
            rolling = evaluator.resume(rolling.relations, batch.clone());
        }
        assert_eq!(rolling.termination, scratch.termination);
        assert_eq!(
            rendered_relations(&rolling),
            rendered_relations(&scratch),
            "rolling resume diverged under {strategy:?}"
        );
    }
}

/// One maintained update batch: an insertion or a retraction.
#[derive(Debug, Clone)]
enum Update {
    Insert(Vec<Fact>),
    Retract(Vec<Fact>),
}

/// Applies an interleaving of insert/retract batches to a maintained
/// materialization (mirroring the EDB alongside, exactly as a
/// `pcs-service` session does) and requires the result to be identical to
/// evaluating the surviving EDB from scratch — for every strategy, both
/// join cores, and with a 4-thread maintained run bit-for-bit identical to
/// the sequential one.
fn assert_interleaving_matches_scratch(program: &Program, base: &Database, updates: &[Update]) {
    let mut surviving = base.clone();
    for update in updates {
        match update {
            Update::Insert(facts) => {
                for fact in facts {
                    surviving.add(fact.clone());
                }
            }
            Update::Retract(facts) => {
                surviving.remove_facts(facts);
            }
        }
    }
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        for options in core_options() {
            let context = format!("under {strategy:?} with {} core", options_label(&options));
            let evaluator = Evaluator::new(&optimized.program, options.clone());
            let scratch = evaluator.evaluate(&surviving);
            let maintain = |evaluator: &Evaluator| {
                let mut edb = base.clone();
                let mut rolling = evaluator.evaluate(base);
                for update in updates {
                    rolling = match update {
                        Update::Insert(facts) => {
                            for fact in facts {
                                edb.add(fact.clone());
                            }
                            evaluator.resume(rolling.relations, facts.clone())
                        }
                        Update::Retract(facts) => {
                            edb.remove_facts(facts);
                            evaluator.retract(rolling.relations, facts.clone(), &edb)
                        }
                    };
                }
                rolling
            };
            let rolling = maintain(&evaluator);
            assert_eq!(
                rolling.termination, scratch.termination,
                "termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&rolling),
                rendered_relations(&scratch),
                "maintained relations diverged from scratch {context}"
            );
            assert_eq!(
                rolling.stats.facts_per_predicate, scratch.stats.facts_per_predicate,
                "fact counts diverged {context}"
            );
            assert_eq!(
                rolling.stats.constraint_facts, scratch.stats.constraint_facts,
                "constraint fact counts diverged {context}"
            );

            // The maintained sequence is bit-for-bit deterministic under a
            // 4-thread worker pool.
            let parallel_evaluator = Evaluator::new(
                &optimized.program,
                options.clone().with_threads(4).with_min_parallel_work(0),
            );
            let parallel = maintain(&parallel_evaluator);
            assert_eq!(
                rolling.termination, parallel.termination,
                "parallel maintained termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&rolling),
                rendered_relations(&parallel),
                "parallel maintained relations diverged {context}"
            );
            assert_eq!(
                rolling.stats.iterations.len(),
                parallel.stats.iterations.len(),
                "parallel maintained iteration counts diverged {context}"
            );
            for (i, (a, b)) in rolling
                .stats
                .iterations
                .iter()
                .zip(&parallel.stats.iterations)
                .enumerate()
            {
                assert_eq!(
                    (a.derivations, a.new_facts, a.subsumed),
                    (b.derivations, b.new_facts, b.subsumed),
                    "parallel maintained iteration {i} statistics diverged {context}"
                );
            }
        }
    }
}

#[test]
fn mixed_updates_match_scratch_on_the_flights_workload() {
    let program = programs::flights();
    let base = programs::flights_database(6, 8);
    let updates = [
        Update::Insert(leg_updates(&[
            ("madison", "newhub", 10, 10),
            ("newhub", "seattle", 10, 10),
        ])),
        // Remove a leg from the original chain: composed flights through it
        // must disappear unless re-derivable another way.
        Update::Retract(leg_updates(&[("madison", "chicago", 50, 100)])),
        Update::Insert(leg_updates(&[("madison", "chicago", 45, 90)])),
        Update::Retract(leg_updates(&[("newhub", "seattle", 10, 10)])),
    ];
    assert_interleaving_matches_scratch(&program, &base, &updates);
}

#[test]
fn mixed_updates_match_scratch_on_the_7x_workloads() {
    let base = programs::example_7x_database(10, 8);
    let updates = [
        Update::Insert(vec![
            Fact::ground("b1", vec![Value::num(3), Value::num(10_001)]),
            Fact::ground("b1", vec![Value::num(50), Value::num(10_004)]),
        ]),
        Update::Retract(vec![Fact::ground(
            "b2",
            vec![Value::num(10_000), Value::num(10_001)],
        )]),
        Update::Retract(vec![Fact::ground(
            "b1",
            vec![Value::num(3), Value::num(10_001)],
        )]),
    ];
    assert_interleaving_matches_scratch(&programs::example_71(), &base, &updates);
    assert_interleaving_matches_scratch(&programs::example_72(), &base, &updates);
}

#[test]
fn retracting_a_constraint_fact_resurrects_what_it_subsumed() {
    // The ground updates sit inside the constraint fact's denotation: at
    // seed time they are subsumed and never stored.  Retracting the
    // constraint fact must resurrect them — the subtlest corner of the
    // retraction differential.
    let program = programs::example_71();
    let mut base = programs::example_7x_database(6, 5);
    base.add_facts_str(
        "b1(X, 10001) :- X >= 100, X <= 102.\n\
         b1(101, 10001).\n\
         b1(102, 10001).",
    )
    .unwrap();
    let constraint_fact = parse_facts("b1(X, 10001) :- X >= 100, X <= 102.").unwrap();
    let updates = [
        Update::Retract(constraint_fact.clone()),
        Update::Insert(parse_facts("b2(10005, 10006).").unwrap()),
        Update::Retract(parse_facts("b1(102, 10001).").unwrap()),
    ];
    assert_interleaving_matches_scratch(&program, &base, &updates);
}

/// The unified one-epoch path: `Evaluator::apply` on a single mixed
/// `UpdateBatch { inserts, retracts }` — retractions first, insertions
/// seeded into the same resumed fixpoint — must store exactly what a
/// from-scratch evaluation of the surviving EDB stores, for every strategy,
/// both join cores, both storage layouts, and bit-for-bit under 4 threads.
fn assert_batch_matches_scratch(program: &Program, base: &Database, batch: &UpdateBatch) {
    let mut surviving = base.clone();
    surviving.remove_facts(&batch.retracts);
    let mut full = surviving.clone();
    for fact in &batch.inserts {
        full.add(fact.clone());
    }
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        for options in core_options() {
            let context = format!("under {strategy:?} with {} core", options_label(&options));
            let evaluator = Evaluator::new(&optimized.program, options.clone());
            let scratch = evaluator.evaluate(&full);
            let applied = evaluator.apply(
                evaluator.evaluate(base).relations,
                batch.clone(),
                &surviving,
            );
            assert_eq!(
                applied.termination, scratch.termination,
                "termination diverged {context}"
            );
            assert_eq!(
                rendered_relations(&applied),
                rendered_relations(&scratch),
                "one-batch apply diverged from scratch {context}"
            );
            assert_eq!(
                applied.stats.facts_per_predicate, scratch.stats.facts_per_predicate,
                "fact counts diverged {context}"
            );

            let parallel_evaluator = Evaluator::new(
                &optimized.program,
                options.clone().with_threads(4).with_min_parallel_work(0),
            );
            let parallel = parallel_evaluator.apply(
                parallel_evaluator.evaluate(base).relations,
                batch.clone(),
                &surviving,
            );
            assert_eq!(
                rendered_relations(&applied),
                rendered_relations(&parallel),
                "parallel one-batch apply diverged {context}"
            );
        }
    }
}

#[test]
fn one_mixed_batch_matches_scratch_on_the_flights_workload() {
    let program = programs::flights();
    let base = programs::flights_database(6, 8);
    let batch = UpdateBatch::retracting(leg_updates(&[("madison", "seattle", 200, 90)]))
        .insert_str("singleleg(madison, newhub, 10, 10).")
        .unwrap()
        .insert_str("singleleg(newhub, seattle, 10, 10).")
        .unwrap();
    assert_batch_matches_scratch(&program, &base, &batch);
}

#[test]
fn one_mixed_batch_matches_scratch_with_constraint_facts() {
    // Retract a constraint fact and insert ground facts inside its former
    // denotation in the *same* batch: the insertions must survive (they are
    // no longer subsumed) and the resurrection pass must not double-store
    // them.
    let program = programs::example_71();
    let mut base = programs::example_7x_database(6, 5);
    base.add_facts_str("b1(X, 10001) :- X >= 100, X <= 102.")
        .unwrap();
    let batch =
        UpdateBatch::retracting(parse_facts("b1(X, 10001) :- X >= 100, X <= 102.").unwrap())
            .insert_str("b1(101, 10001).\nb2(10006, 10007).")
            .unwrap();
    assert_batch_matches_scratch(&program, &base, &batch);
}

#[test]
fn degenerate_batches_match_the_dedicated_entry_points() {
    // A pure-insert batch is `resume`; a pure-retract batch is `retract`.
    // `apply` must agree with both specialized paths exactly.
    let program = programs::flights();
    let base = programs::flights_database(5, 5);
    let inserts = leg_updates(&[("madison", "hubx", 30, 30), ("hubx", "seattle", 40, 40)]);
    let retracts = leg_updates(&[("madison", "seattle", 200, 90)]);
    let evaluator = Optimizer::new(program)
        .strategy(OptStrategy::Optimal)
        .optimize()
        .unwrap()
        .evaluator();

    let via_apply = evaluator.apply(
        evaluator.evaluate(&base).relations,
        UpdateBatch::inserting(inserts.clone()),
        &base,
    );
    let via_resume = evaluator.resume(evaluator.evaluate(&base).relations, inserts);
    assert_eq!(
        rendered_relations(&via_apply),
        rendered_relations(&via_resume)
    );
    assert_eq!(via_apply.stats.retracted, via_resume.stats.retracted);

    let mut surviving = base.clone();
    surviving.remove_facts(&retracts);
    let via_apply = evaluator.apply(
        evaluator.evaluate(&base).relations,
        UpdateBatch::retracting(retracts.clone()),
        &surviving,
    );
    let via_retract = evaluator.retract(evaluator.evaluate(&base).relations, retracts, &surviving);
    assert_eq!(
        rendered_relations(&via_apply),
        rendered_relations(&via_retract)
    );
    assert_eq!(via_apply.stats.retracted, via_retract.stats.retracted);
    assert_eq!(
        via_apply.stats.removed_facts,
        via_retract.stats.removed_facts
    );
}

#[test]
fn retracting_everything_empties_the_materialization() {
    let program = programs::flights();
    let base = programs::flights_database(4, 0);
    let legs: Vec<Fact> = base.facts_for(&Pred::new("singleleg")).to_vec();
    let updates = [Update::Retract(legs)];
    assert_interleaving_matches_scratch(&program, &base, &updates);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    #[test]
    fn mixed_updates_match_scratch_on_random_interleavings(
        legs in proptest::collection::vec(
            (0u8..6, 0u8..6, 30i64..240, 20i64..200),
            4..10
        ),
        ops in proptest::collection::vec(0u8..3, 3..6)
    ) {
        // Random acyclic legs; a random schedule inserts them in batches
        // and retracts previously inserted ones (op 2 retracts the oldest
        // still-present leg, ops 0/1 insert the next pending leg).
        let base = programs::flights_database(4, 0);
        let mut pending: Vec<Fact> = Vec::new();
        for (a, b, time, cost) in &legs {
            if a == b {
                continue;
            }
            pending.push(Fact::ground(
                "singleleg",
                vec![
                    Value::sym(format!("c{}", a.min(b))),
                    Value::sym(format!("c{}", a.max(b))),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            ));
        }
        let mut updates: Vec<Update> = Vec::new();
        let mut present: Vec<Fact> = Vec::new();
        let mut next = 0usize;
        for op in ops {
            if op == 2 && !present.is_empty() {
                updates.push(Update::Retract(vec![present.remove(0)]));
            } else if next < pending.len() {
                let fact = pending[next].clone();
                next += 1;
                present.push(fact.clone());
                updates.push(Update::Insert(vec![fact]));
            }
        }
        if updates.is_empty() {
            updates.push(Update::Insert(Vec::new()));
        }
        assert_interleaving_matches_scratch(&programs::flights(), &base, &updates);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    #[test]
    fn resume_matches_scratch_on_random_splits(
        legs in proptest::collection::vec(
            (0u8..6, 0u8..6, 30i64..240, 20i64..200),
            2..10
        ),
        split in 1usize..9
    ) {
        // A random acyclic leg set, split at a random point into base facts
        // and an update batch.
        let mut base = programs::flights_database(4, 0);
        let mut updates = Vec::new();
        for (i, (a, b, time, cost)) in legs.iter().enumerate() {
            if a == b {
                continue;
            }
            let (lo, hi) = (a.min(b), a.max(b));
            let fact = Fact::ground(
                "singleleg",
                vec![
                    Value::sym(format!("c{lo}")),
                    Value::sym(format!("c{hi}")),
                    Value::num(*time),
                    Value::num(*cost),
                ],
            );
            if i < split % legs.len() {
                base.add(fact);
            } else {
                updates.push(fact);
            }
        }
        assert_resume_matches_scratch(&programs::flights(), &base, &updates);
    }
}
