//! Differential tests for the evaluator configurations.
//!
//! Two axes are compared, across every rewriting strategy, on deterministic
//! and on randomly generated EDBs:
//!
//! * the two **join cores** — the indexed evaluator (per-position hash
//!   indexes, explicit delta windows, body reordering) and the legacy
//!   nested-loop evaluator — must produce identical relations, stats-level
//!   fact counts, and termination;
//! * **parallel versus sequential** evaluation — for each core, sharding the
//!   per-iteration derivation work across worker threads must be
//!   *bit-for-bit* identical to the sequential evaluation: same relations,
//!   same per-iteration derivation/new/subsumed/delta statistics, same
//!   termination.  The deterministic (rule, delta-position, delta-fact)
//!   merge order at the iteration barrier is what the stronger comparison
//!   pins down.

use std::collections::BTreeMap;

use proptest::prelude::*;

use pushing_constraint_selections::engine::EvalResult;
use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the
// optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

fn all_strategies() -> Vec<OptStrategy> {
    vec![
        OptStrategy::None,
        OptStrategy::ConstraintRewrite,
        OptStrategy::MagicOnly,
        OptStrategy::Optimal,
        OptStrategy::Sequence(vec![Step::Qrp, Step::Magic]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Qrp]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

/// Renders every relation as a sorted list of fact strings, keyed by
/// predicate, so the stored fact sets of two evaluations can be compared
/// independently of derivation order.
fn rendered_relations(result: &EvalResult) -> BTreeMap<String, Vec<String>> {
    result
        .relations
        .iter()
        .map(|(pred, relation)| {
            let mut facts: Vec<String> = relation.iter().map(|f| f.to_string()).collect();
            facts.sort();
            (pred.to_string(), facts)
        })
        .collect()
}

/// Asserts `parallel` is bit-for-bit identical to `sequential`: relations,
/// termination, and every per-iteration statistic.
fn assert_identical(sequential: &EvalResult, parallel: &EvalResult, context: &str) {
    assert_eq!(
        sequential.termination, parallel.termination,
        "termination diverged {context}"
    );
    assert_eq!(
        rendered_relations(sequential),
        rendered_relations(parallel),
        "stored relations diverged {context}"
    );
    assert_eq!(
        sequential.stats.facts_per_predicate, parallel.stats.facts_per_predicate,
        "stats-level fact counts diverged {context}"
    );
    assert_eq!(
        sequential.stats.constraint_facts, parallel.stats.constraint_facts,
        "constraint fact counts diverged {context}"
    );
    assert_eq!(
        sequential.stats.iterations.len(),
        parallel.stats.iterations.len(),
        "iteration counts diverged {context}"
    );
    for (i, (a, b)) in sequential
        .stats
        .iterations
        .iter()
        .zip(&parallel.stats.iterations)
        .enumerate()
    {
        assert_eq!(
            (a.derivations, a.new_facts, a.subsumed, a.delta_facts),
            (b.derivations, b.new_facts, b.subsumed, b.delta_facts),
            "iteration {i} statistics diverged {context}"
        );
    }
}

/// Evaluates `program` against `db` under every strategy with both join
/// cores, sequentially and with a 4-thread worker pool, and asserts that
/// (a) the cores agree on relations, fact counts, and termination, and
/// (b) for each core the parallel evaluation is identical to the sequential
/// one down to the per-iteration statistics.
fn assert_cores_agree(program: &Program, db: &Database) {
    for strategy in all_strategies() {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy.clone())
            .optimize()
            .expect("optimization succeeds");
        let indexed = optimized.evaluate_with(db, EvalOptions::indexed().with_threads(1));
        let legacy = optimized.evaluate_with(db, EvalOptions::legacy().with_threads(1));
        assert_eq!(
            indexed.termination, legacy.termination,
            "termination diverged under {strategy:?}"
        );
        assert_eq!(
            rendered_relations(&indexed),
            rendered_relations(&legacy),
            "stored relations diverged under {strategy:?}"
        );
        assert_eq!(
            indexed.stats.facts_per_predicate, legacy.stats.facts_per_predicate,
            "stats-level fact counts diverged under {strategy:?}"
        );
        assert_eq!(
            indexed.stats.constraint_facts, legacy.stats.constraint_facts,
            "constraint fact counts diverged under {strategy:?}"
        );
        let indexed_parallel = optimized.evaluate_with(db, EvalOptions::indexed().with_threads(4));
        assert_identical(
            &indexed,
            &indexed_parallel,
            &format!("between sequential and parallel indexed cores under {strategy:?}"),
        );
        let legacy_parallel = optimized.evaluate_with(
            db,
            EvalOptions::legacy()
                .with_threads(4)
                .with_min_parallel_work(0),
        );
        assert_identical(
            &legacy,
            &legacy_parallel,
            &format!("between sequential and parallel legacy cores under {strategy:?}"),
        );
    }
}

fn edge_db(edges: &[(i64, i64)]) -> Database {
    let mut db = Database::new();
    for (x, y) in edges {
        db.add_ground("b1", vec![Value::num(*x), Value::num(*y)]);
        db.add_ground("b2", vec![Value::num(*y), Value::num(*x + *y)]);
    }
    db
}

/// A random acyclic flight network (legs oriented from the lower- to the
/// higher-numbered city) on top of the deterministic madison–seattle chain.
fn flights_db(legs: &[(u8, u8, i64, i64)]) -> Database {
    let mut db = programs::flights_database(4, 0);
    for (a, b, time, cost) in legs {
        if a == b {
            continue;
        }
        let (lo, hi) = (a.min(b), a.max(b));
        db.add_ground(
            "singleleg",
            vec![
                Value::sym(format!("c{lo}")),
                Value::sym(format!("c{hi}")),
                Value::num(*time),
                Value::num(*cost),
            ],
        );
    }
    db
}

#[test]
fn cores_agree_on_the_deterministic_paper_workloads() {
    for (program, db) in [
        (programs::flights(), programs::flights_database(6, 15)),
        (programs::example_41(), programs::example_41_database(20)),
        (
            programs::example_71(),
            programs::example_7x_database(15, 12),
        ),
        (
            programs::example_72(),
            programs::example_7x_database(15, 12),
        ),
    ] {
        assert_cores_agree(&program, &db);
    }
}

#[test]
fn cores_agree_on_constraint_fact_edbs() {
    // A database mixing ground facts with proper constraint facts exercises
    // the constraint-fact tail of the per-position indexes.
    use pushing_constraint_selections::constraints::{Atom, Conjunction, Var};
    let mut db = programs::example_7x_database(8, 6);
    assert!(db.add_constrained(
        "b1",
        2,
        Conjunction::from_atoms([
            Atom::var_ge(Var::position(1), 0),
            Atom::var_le(Var::position(1), 2),
            Atom::var_eq(Var::position(2), 1_000),
        ]),
    ));
    assert_cores_agree(&programs::example_71(), &db);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn cores_agree_on_random_7x_edbs(
        edges in proptest::collection::vec((0i64..12, 0i64..12), 1..14)
    ) {
        let db = edge_db(&edges);
        assert_cores_agree(&programs::example_71(), &db);
        assert_cores_agree(&programs::example_72(), &db);
    }

    #[test]
    fn cores_agree_on_random_flight_networks(
        legs in proptest::collection::vec(
            (0u8..8, 0u8..8, 30i64..240, 20i64..200),
            1..12
        )
    ) {
        let db = flights_db(&legs);
        assert_cores_agree(&programs::flights(), &db);
    }
}
