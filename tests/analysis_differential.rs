//! Soundness differential for the static analyzer and its dead-rule pruning.
//!
//! Three claims are checked here, across crates:
//!
//! * **Pruning is invisible.**  For every rewriting strategy and both join
//!   cores, evaluating with [`EvalOptions::prune_dead`] enabled must produce
//!   exactly the same answers and the same termination as evaluating with it
//!   disabled.  Dead rules (unsatisfiable constraints, impossible bodies)
//!   derive nothing, so removing them before rewriting may only change
//!   *intermediate* relations (magic/adorned predicates seeded from pruned
//!   rules), never the answer set.  Under [`Strategy::None`] no rewriting
//!   happens, so there the stronger claim holds: the full non-empty relation
//!   map is identical.
//! * **Clean programs stay clean.**  A generator that builds well-formed
//!   programs *by construction* (consistent arities, head variables drawn
//!   from body variables) must never trip an error-severity diagnostic —
//!   errors are reserved for genuinely broken programs.
//! * **`unsatisfiable-rule` is sound.**  Every rule the analyzer flags as
//!   unsatisfiable must derive nothing.  This is checked against the naive
//!   reference interpreter: the flagged rule's head predicate is renamed to a
//!   fresh probe predicate (its body is untouched, so everything it could
//!   consume is still derived), and the probe's relation must come out empty.

use std::collections::BTreeMap;

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pushing_constraint_selections::engine::naive;
use pushing_constraint_selections::engine::EvalResult;
use pushing_constraint_selections::prelude::*;
// proptest's prelude also exports a `Strategy` trait; disambiguate the
// optimizer's enum.
use pushing_constraint_selections::Strategy as OptStrategy;

fn all_strategies() -> Vec<OptStrategy> {
    vec![
        OptStrategy::None,
        OptStrategy::ConstraintRewrite,
        OptStrategy::MagicOnly,
        OptStrategy::Optimal,
        OptStrategy::Sequence(vec![Step::Qrp, Step::Magic]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Qrp]),
        OptStrategy::Sequence(vec![Step::Magic, Step::Pred, Step::Qrp]),
    ]
}

/// A program with three kinds of dead weight on top of two live rules:
/// a directly unsatisfiable rule (`r2`), a rule whose only body predicate is
/// derived solely by that rule (`r3`), and a second unsatisfiable rule on the
/// query predicate itself (`r5`).
fn seeded_dead_program() -> Program {
    parse_program(
        "r1: p(X) :- e(X).\n\
         r2: deadpred(X) :- p(X), X > 5, X < 2.\n\
         r3: q(X) :- deadpred(X).\n\
         r4: q(X) :- p(X), X <= 50.\n\
         r5: q(X) :- p(X), X >= 100, X <= 60.\n\
         ?- q(U).",
    )
    .expect("seeded program parses")
}

fn values_db(values: &[i64]) -> Database {
    let mut db = Database::new();
    for v in values {
        db.add_ground("e", vec![Value::num(*v)]);
    }
    db
}

/// Renders the answer set sorted and with the (possibly adorned) predicate
/// name stripped, so answers compare across rewritings.
fn rendered_answers(optimized: &Optimized, result: &EvalResult) -> Vec<String> {
    let query = optimized.program.query().expect("query present");
    let mut rendered: Vec<String> = result
        .answers(query)
        .iter()
        .map(|fact| {
            let text = fact.to_string();
            text.split_once('(')
                .map(|(_, rest)| rest.to_string())
                .unwrap_or(text)
        })
        .collect();
    rendered.sort();
    rendered.dedup();
    rendered
}

/// The non-empty relations as sorted fact strings keyed by predicate.
/// Pruning may drop a dead rule's head predicate from the result entirely,
/// so empty relations are excluded from the comparison.
fn nonempty_relations(result: &EvalResult) -> BTreeMap<String, Vec<String>> {
    result
        .relations
        .iter()
        .filter_map(|(pred, relation)| {
            let mut facts: Vec<String> = relation.iter().map(|f| f.to_string()).collect();
            if facts.is_empty() {
                return None;
            }
            facts.sort();
            Some((pred.to_string(), facts))
        })
        .collect()
}

/// Asserts pruning-on and pruning-off agree for every strategy and both join
/// cores: same answers, same termination, and — under `Strategy::None`,
/// where no rewriting can introduce strategy-specific intermediate
/// predicates — the same non-empty relations.
fn assert_pruning_sound(program: &Program, db: &Database) {
    for strategy in all_strategies() {
        for (core_name, core) in [
            ("indexed", EvalOptions::indexed()),
            ("legacy", EvalOptions::legacy()),
        ] {
            let unpruned = Optimizer::new(program.clone())
                .strategy(strategy.clone())
                .eval_options(core.clone().with_prune_dead(false))
                .optimize();
            let pruned = Optimizer::new(program.clone())
                .strategy(strategy.clone())
                .eval_options(core.clone().with_prune_dead(true))
                .optimize();
            match (unpruned, pruned) {
                (Ok(unpruned), Ok(pruned)) => {
                    let base = unpruned.evaluate(db);
                    let opt = pruned.evaluate(db);
                    assert_eq!(
                        base.termination, opt.termination,
                        "termination diverged under {strategy:?} on the {core_name} core"
                    );
                    assert_eq!(
                        rendered_answers(&unpruned, &base),
                        rendered_answers(&pruned, &opt),
                        "answers diverged under {strategy:?} on the {core_name} core"
                    );
                    if strategy == OptStrategy::None {
                        assert_eq!(
                            nonempty_relations(&base),
                            nonempty_relations(&opt),
                            "non-empty relations diverged under Strategy::None on the \
                             {core_name} core"
                        );
                    }
                }
                (unpruned, pruned) => {
                    // A strategy may reject a program outright when constraint
                    // rewriting deletes every (unsatisfiable) defining rule of
                    // the query predicate — the true answer set is then empty.
                    // Whichever pipeline still optimizes must agree.
                    for optimized in [unpruned.ok(), pruned.ok()].into_iter().flatten() {
                        let result = optimized.evaluate(db);
                        assert!(
                            rendered_answers(&optimized, &result).is_empty(),
                            "one pipeline was rejected but the other found answers \
                             under {strategy:?} on the {core_name} core"
                        );
                    }
                }
            }
        }
    }
}

#[test]
fn the_seeded_program_has_the_expected_dead_rules() {
    let program = seeded_dead_program();
    let analysis = analyze(&program);
    assert!(!analysis.has_errors(), "{}", analysis.render());
    assert_eq!(
        analysis.dead_rules,
        [1usize, 2, 4].into_iter().collect(),
        "r2 (unsat), r3 (impossible body), and r5 (unsat) should be dead"
    );
    assert_eq!(analysis.unsat_rules, [1usize, 4].into_iter().collect());
}

#[test]
fn pruning_is_invisible_on_the_seeded_program() {
    let program = seeded_dead_program();
    assert_pruning_sound(&program, &values_db(&[1, 7, 42, 55, 120]));
}

#[test]
fn pruning_is_invisible_on_the_paper_workloads() {
    // The paper programs have no dead rules; pruning must be an exact no-op.
    for (program, db) in [
        (programs::flights(), programs::flights_database(6, 10)),
        (programs::example_41(), programs::example_41_database(16)),
        (
            programs::example_72(),
            programs::example_7x_database(12, 10),
        ),
    ] {
        assert_pruning_sound(&program, &db);
    }
}

/// A generator for random programs that are well formed *by construction*:
/// every predicate has one fixed arity, every head variable appears in a
/// body literal, and the query matches the arity of the queried predicate.
/// Constraints are random and may be unsatisfiable — that is a warning, not
/// an error.
struct ProgramGen {
    rng: StdRng,
}

impl ProgramGen {
    fn new(seed: u64) -> ProgramGen {
        ProgramGen {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn var(&mut self) -> &'static str {
        ["X0", "X1", "X2", "X3", "X4", "X5"][self.rng.random_range(0..6usize)]
    }

    /// Builds a random stratified program over EDB predicates `e1/1`, `e2/2`
    /// and IDB predicates `p0..pk` (each of fixed random arity), returning
    /// its source text.  When `conflicting_bounds` is set, rules may receive
    /// a `V >= hi, V <= lo` pair with `hi > lo`, seeding unsatisfiable rules.
    fn program(&mut self, conflicting_bounds: bool) -> String {
        let num_idb = self.rng.random_range(1..=4usize);
        let arity: Vec<usize> = (0..num_idb).map(|_| self.rng.random_range(1..=3)).collect();
        let mut text = String::new();
        for (i, pred_arity) in arity.iter().copied().enumerate() {
            let num_rules = self.rng.random_range(1..=2usize);
            for r in 0..num_rules {
                // Body: 1..=3 literals over the EDB predicates and strictly
                // lower-numbered IDB predicates (so the program is acyclic
                // and the naive oracle always reaches a fixpoint).
                let num_body = self.rng.random_range(1..=3usize);
                let mut body = Vec::new();
                let mut body_vars: Vec<&'static str> = Vec::new();
                for _ in 0..num_body {
                    let choice = self.rng.random_range(0..2 + i);
                    let (name, lit_arity) = match choice {
                        0 => ("e1".to_string(), 1),
                        1 => ("e2".to_string(), 2),
                        j => (format!("p{}", j - 2), arity[j - 2]),
                    };
                    let args: Vec<&'static str> = (0..lit_arity).map(|_| self.var()).collect();
                    body_vars.extend(&args);
                    body.push(format!("{name}({})", args.join(", ")));
                }
                body_vars.sort_unstable();
                body_vars.dedup();
                // Head: every argument is a variable that occurs in the body.
                let head_args: Vec<&str> = (0..pred_arity)
                    .map(|_| body_vars[self.rng.random_range(0..body_vars.len())])
                    .collect();
                let mut atoms = Vec::new();
                if conflicting_bounds && self.rng.random_range(0..3) == 0 {
                    let v = body_vars[self.rng.random_range(0..body_vars.len())];
                    let lo = self.rng.random_range(-20i64..0);
                    let hi = self.rng.random_range(1i64..20);
                    atoms.push(format!("{v} >= {hi}"));
                    atoms.push(format!("{v} <= {lo}"));
                } else if self.rng.random_range(0..2) == 0 {
                    let v = body_vars[self.rng.random_range(0..body_vars.len())];
                    let bound = self.rng.random_range(-50i64..50);
                    let op = ["<=", ">=", "<", ">"][self.rng.random_range(0..4usize)];
                    atoms.push(format!("{v} {op} {bound}"));
                }
                let constraint = if atoms.is_empty() {
                    String::new()
                } else {
                    format!(", {}", atoms.join(", "))
                };
                text.push_str(&format!(
                    "g{i}_{r}: p{i}({}) :- {}{constraint}.\n",
                    head_args.join(", "),
                    body.join(", "),
                ));
            }
        }
        // Query the last IDB predicate with distinct fresh variables.
        let last = num_idb - 1;
        let qvars: Vec<String> = (0..arity[last]).map(|k| format!("Q{k}")).collect();
        text.push_str(&format!("?- p{last}({}).\n", qvars.join(", ")));
        text
    }

    fn database(&mut self) -> Database {
        let mut db = Database::new();
        for _ in 0..self.rng.random_range(1..=8usize) {
            db.add_ground("e1", vec![Value::num(self.rng.random_range(-30i64..30))]);
        }
        for _ in 0..self.rng.random_range(1..=8usize) {
            db.add_ground(
                "e2",
                vec![
                    Value::num(self.rng.random_range(-30i64..30)),
                    Value::num(self.rng.random_range(-30i64..30)),
                ],
            );
        }
        db
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Well-formed-by-construction programs never produce error-severity
    /// diagnostics (warnings and notes are fine — random constraints can be
    /// unsatisfiable, random rules can shadow each other).
    #[test]
    fn well_formed_programs_analyze_without_errors(seed in 0u64..u64::MAX) {
        let mut gen = ProgramGen::new(seed);
        let text = gen.program(false);
        let program = parse_program(&text).expect("generated program parses");
        let analysis = analyze(&program);
        prop_assert!(
            !analysis.has_errors(),
            "errors on a well-formed program:\n{text}\n{}",
            analysis.render(),
        );
    }

    /// Every rule the analyzer flags as unsatisfiable derives nothing: with
    /// the flagged rule's head renamed to a fresh probe predicate, the naive
    /// oracle's relation for the probe stays empty.
    #[test]
    fn unsatisfiable_rules_derive_nothing(seed in 0u64..u64::MAX) {
        let mut gen = ProgramGen::new(seed);
        let text = gen.program(true);
        let program = parse_program(&text).expect("generated program parses");
        let analysis = analyze(&program);
        if analysis.unsat_rules.is_empty() {
            return;
        }
        let mut probe = Program::new().with_edb(program.edb_predicates());
        let mut probes: Vec<(usize, Pred)> = Vec::new();
        for (idx, rule) in program.rules().iter().enumerate() {
            let mut rule = rule.clone();
            if analysis.unsat_rules.contains(&idx) {
                let fresh = Pred::from(format!("unsat_probe_{idx}").as_str());
                rule.head.predicate = fresh.clone();
                probes.push((idx, fresh));
            }
            probe.add_rule(rule);
        }
        let db = gen.database();
        let oracle = naive::evaluate(&probe, &db, &EvalLimits::capped(64));
        prop_assert!(oracle.termination.is_fixpoint(), "oracle diverged on:\n{text}");
        for (idx, fresh) in probes {
            prop_assert!(
                oracle.facts_for(&fresh).is_empty(),
                "rule #{idx} was flagged unsatisfiable but derived {} fact(s):\n{text}",
                oracle.count_for(&fresh),
            );
        }
    }

    /// Pruning stays invisible on random programs and EDBs: for every rule
    /// the analyzer can prove dead, evaluation with pruning produces the
    /// same answers as evaluation without it, for all strategies and cores.
    #[test]
    fn pruning_is_invisible_on_random_programs(seed in 0u64..u64::MAX) {
        let mut gen = ProgramGen::new(seed);
        let text = gen.program(true);
        let program = parse_program(&text).expect("generated program parses");
        let db = gen.database();
        assert_pruning_sound(&program, &db);
    }
}
