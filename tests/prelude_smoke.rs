//! Workspace smoke test: the facade crate's `prelude::*` surface compiles,
//! and the `Optimizer` quickstart promised by `src/lib.rs` runs end to end.

use pushing_constraint_selections::prelude::*;
// The prelude exports `Strategy` both as the optimizer enum and (via the
// facade) nothing else by that name; alias for clarity.
use pushing_constraint_selections::{Optimized, Optimizer, Strategy};

/// Every layer's flagship types are reachable through the prelude glob.
#[test]
fn prelude_reexports_every_layer() {
    // constraints
    let x = Var::new("X");
    let atom = Atom::var_le(x.clone(), 4);
    let conj = Conjunction::of(atom);
    assert!(conj.is_satisfiable());
    let _: Rational = Rational::from(2);
    let _ = LinearExpr::var(x);
    let _ = ConstraintSet::truth();

    // lang
    let program: Program = parse_program("q(X) :- b(X), X <= 4.\n?- q(Z).").unwrap();
    assert_eq!(program.rules().len(), 1);
    let _: &Query = program.query().unwrap();
    let _: &Rule = &program.rules()[0];
    let _: Pred = Pred::new("q");
    let _: Term = Term::Num(1.into());
    let _: Literal = program.rules()[0].head.clone();

    // engine
    let mut db = Database::new();
    db.add_ground("b", vec![Value::num(3)]);
    let result = Evaluator::new(&program, EvalOptions::default()).evaluate(&db);
    assert!(result.termination.is_fixpoint());
    let _: &EvalLimits = &EvalOptions::default().limits;
    let _: Vec<Fact> = result.answers(program.query().unwrap());
    let _: Termination = result.termination;

    // transform
    let rewritten = constraint_rewrite(&program, &RewriteOptions::default()).unwrap();
    assert!(!rewritten.program.rules().is_empty());
    let _ = magic_rewrite(&program, &MagicOptions::bound_if_ground()).unwrap();
    let _ = apply_sequence(
        &program,
        &[Step::Pred, Step::Qrp, Step::Magic],
        &SequenceOptions::default(),
    )
    .unwrap();
    assert_eq!(OPTIMAL_SEQUENCE, [Step::Pred, Step::Qrp, Step::Magic]);
    let _ = check_decidable_class(&program);
    let _ = gen_predicate_constraints(
        &program,
        &std::collections::BTreeMap::new(),
        &GenOptions::default(),
    );
    let query_preds: std::collections::BTreeSet<Pred> = [Pred::new("q")].into_iter().collect();
    let _ = gen_qrp_constraints(&program, &query_preds, &GenOptions::default());
    let _ = PropagateOptions::default();
    let _ = SipStrategy::default();

    // core
    let _ = programs::example_41();
    let _ = programs::flights();
}

/// The quickstart from the facade crate's `src/lib.rs` rustdoc, as a plain
/// test so it is exercised even when doctests are skipped.
#[test]
fn facade_quickstart_runs_end_to_end() {
    let program = programs::example_41();
    let optimized: Optimized = Optimizer::new(program)
        .strategy(Strategy::ConstraintRewrite)
        .optimize()
        .unwrap();
    // The rewritten definition of p2 checks X <= 4 before scanning b2.
    assert!(!optimized.program.rules_for(&Pred::new("p2"))[0]
        .constraint
        .is_trivially_true());
}

/// The full default pipeline (Strategy::Optimal) agrees with the unoptimized
/// program on the flights workload, while computing no more flight facts.
#[test]
fn optimal_strategy_preserves_answers_on_flights() {
    let program = programs::flights();
    let db = programs::flights_database(6, 20);

    let baseline = Optimizer::new(program.clone())
        .strategy(Strategy::None)
        .optimize()
        .unwrap();
    let optimal = Optimizer::new(program)
        .strategy(Strategy::default())
        .optimize()
        .unwrap();

    assert_eq!(baseline.count_answers(&db), optimal.count_answers(&db));
    let flight = Pred::new("flight");
    assert!(optimal.evaluate(&db).count_for(&flight) <= baseline.evaluate(&db).count_for(&flight));
}
