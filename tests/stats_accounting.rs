//! Per-iteration statistics accounting under the indexed join core: the
//! delta sizes driving each iteration must match the new-fact counts of the
//! previous iteration, and the totals must tie out against the stored facts
//! — on the flights workload, sequentially and with a parallel worker pool.

use pushing_constraint_selections::prelude::*;

fn assert_delta_accounting(threads: usize) {
    let program = programs::flights();
    let db = programs::flights_database(6, 20);
    // min_parallel_work = 0 forces sharding even on these narrow rounds.
    let options = EvalOptions::indexed()
        .with_threads(threads)
        .with_min_parallel_work(0);
    let result = Evaluator::new(&program, options).evaluate(&db);
    assert!(result.termination.is_fixpoint());
    let stats = &result.stats;
    assert!(stats.indexed);
    let iterations = &stats.iterations;
    assert!(iterations.len() >= 3, "flights closure iterates");

    // Iteration 0 is the naive round: its delta is the seeded EDB.
    assert_eq!(iterations[0].delta_facts, db.len(), "threads = {threads}");
    // Every later delta is exactly the previous iteration's new facts.
    for k in 1..iterations.len() {
        assert_eq!(
            iterations[k].delta_facts,
            iterations[k - 1].new_facts,
            "delta of iteration {k} (threads = {threads})"
        );
    }
    // The fixpoint round derives nothing new, and the stored totals tie
    // out: seeded facts plus all new facts equals the stored facts.
    assert_eq!(iterations.last().unwrap().new_facts, 0);
    assert_eq!(db.len() + stats.total_new_facts(), stats.total_facts());
    assert_eq!(stats.total_facts(), result.total_facts());
    // Derivations split exactly into new and subsumed.
    assert_eq!(
        stats.total_derivations(),
        stats.total_new_facts() + stats.total_subsumed()
    );
}

#[test]
fn indexed_delta_accounting_matches_total_fact_deltas() {
    assert_delta_accounting(1);
}

#[test]
fn indexed_delta_accounting_is_unchanged_by_parallelism() {
    assert_delta_accounting(4);
}

#[test]
fn legacy_core_reports_zero_deltas_but_matching_totals() {
    let program = programs::flights();
    let db = programs::flights_database(6, 20);
    let indexed = Evaluator::new(&program, EvalOptions::indexed().with_threads(1)).evaluate(&db);
    let legacy = Evaluator::new(&program, EvalOptions::legacy().with_threads(1)).evaluate(&db);
    // The legacy core slices on fact counts and leaves `delta_facts` at
    // zero; everything it stores still matches the indexed core.
    assert!(legacy.stats.iterations.iter().all(|i| i.delta_facts == 0));
    assert_eq!(
        legacy.stats.facts_per_predicate,
        indexed.stats.facts_per_predicate
    );
    assert_eq!(legacy.stats.total_facts(), indexed.stats.total_facts());
}
