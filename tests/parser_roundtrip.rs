//! Parser round-trip property tests: parse → Display → parse is the
//! identity, for whole programs, fact-only input, and interactive queries.
//!
//! A seeded generator produces random source text from the concrete
//! grammar — rules with labels, constraint facts, `edb` declarations,
//! queries with side constraints, arithmetic with negative rationals
//! (decimals and fractions) — and each case checks that the rendered form
//! of the parse re-parses to the *same* rendered form.  Display is the
//! engine's wire format (the shell prints facts and programs back to
//! users), so any asymmetry between printer and parser is a user-visible
//! bug.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use pushing_constraint_selections::lang::{parse_facts, parse_program, parse_query};

/// Random concrete-syntax generator.  Everything it emits must parse.
struct Source {
    rng: StdRng,
}

impl Source {
    fn new(seed: u64) -> Source {
        Source {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    fn pick<'a>(&mut self, options: &[&'a str]) -> &'a str {
        options[self.rng.random_range(0..options.len())]
    }

    fn pred(&mut self) -> &'static str {
        // `edb` is a keyword at statement start; keep it out of the pool.
        ["p", "q", "r", "edge", "b1", "cheap"][self.rng.random_range(0..6usize)]
    }

    fn var(&mut self) -> &'static str {
        ["X", "Y", "Z", "W", "Time"][self.rng.random_range(0..5usize)]
    }

    fn sym(&mut self) -> &'static str {
        ["a", "b", "madison", "seattle"][self.rng.random_range(0..4usize)]
    }

    /// A numeric literal: integer, negative integer, decimal, or fraction.
    fn number(&mut self) -> String {
        match self.rng.random_range(0..4) {
            0 => format!("{}", self.rng.random_range(0..100)),
            1 => format!("-{}", self.rng.random_range(1..100)),
            2 => format!(
                "{}{}.{}",
                if self.rng.random_range(0..2) == 0 {
                    "-"
                } else {
                    ""
                },
                self.rng.random_range(0..20),
                self.rng.random_range(1..100)
            ),
            _ => format!(
                "{}{}/{}",
                if self.rng.random_range(0..2) == 0 {
                    "-"
                } else {
                    ""
                },
                self.rng.random_range(1..40),
                self.rng.random_range(1..9)
            ),
        }
    }

    /// A linear arithmetic expression over at most two variables.
    fn expr(&mut self) -> String {
        match self.rng.random_range(0..5) {
            0 => self.var().to_string(),
            1 => self.number(),
            2 => format!("{} + {}", self.var(), self.number()),
            3 => format!("{} * {} - {}", self.number(), self.var(), self.number()),
            _ => format!("-({} + {})", self.var(), self.number()),
        }
    }

    fn cmp(&mut self) -> &'static str {
        self.pick(&["<", "<=", ">", ">=", "="])
    }

    fn constraint(&mut self) -> String {
        format!("{} {} {}", self.expr(), self.cmp(), self.expr())
    }

    fn term(&mut self) -> String {
        match self.rng.random_range(0..4) {
            0 => self.var().to_string(),
            1 => self.sym().to_string(),
            2 => self.number(),
            _ => self.expr(),
        }
    }

    fn literal(&mut self) -> String {
        let arity = self.rng.random_range(0..4);
        if arity == 0 {
            return self.pred().to_string();
        }
        let args: Vec<String> = (0..arity).map(|_| self.term()).collect();
        format!("{}({})", self.pred(), args.join(", "))
    }

    /// A rule, a ground fact, or a constraint fact — optionally labeled.
    fn rule(&mut self) -> String {
        let label = if self.rng.random_range(0..3) == 0 {
            format!("r{}: ", self.rng.random_range(1..9))
        } else {
            String::new()
        };
        let head = self.literal();
        let body_literals = self.rng.random_range(0..3);
        let constraints = self.rng.random_range(0..3);
        let mut parts: Vec<String> = (0..body_literals).map(|_| self.literal()).collect();
        parts.extend((0..constraints).map(|_| self.constraint()));
        if parts.is_empty() {
            format!("{label}{head}.")
        } else {
            format!("{label}{head} :- {}.", parts.join(", "))
        }
    }

    /// A fact-only statement: ground or constraint fact (no body literals).
    fn fact(&mut self) -> String {
        let head = self.literal();
        let constraints = self.rng.random_range(0..3);
        if constraints == 0 {
            format!("{head}.")
        } else {
            let parts: Vec<String> = (0..constraints).map(|_| self.constraint()).collect();
            format!("{head} :- {}.", parts.join(", "))
        }
    }

    fn program(&mut self) -> String {
        let mut statements = Vec::new();
        if self.rng.random_range(0..2) == 0 {
            statements.push(format!(
                "edb {}/{}.",
                self.pred(),
                self.rng.random_range(1..4)
            ));
        }
        for _ in 0..self.rng.random_range(1..5) {
            statements.push(self.rule());
        }
        if self.rng.random_range(0..2) == 0 {
            statements.push(self.query());
        }
        statements.join("\n")
    }

    fn query(&mut self) -> String {
        let mut parts = vec![self.literal()];
        // Side constraints ride along in the query body.
        parts.extend((0..self.rng.random_range(0..3)).map(|_| self.constraint()));
        format!("?- {}.", parts.join(", "))
    }

    fn facts(&mut self) -> String {
        (0..self.rng.random_range(1..5))
            .map(|_| self.fact())
            .collect::<Vec<_>>()
            .join("\n")
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn programs_round_trip_through_display(seed in 0u64..u64::MAX) {
        let source = Source::new(seed).program();
        let program = parse_program(&source)
            .unwrap_or_else(|e| panic!("generated program failed to parse: {e}\n{source}"));
        let printed = program.to_string();
        let reparsed = parse_program(&printed)
            .unwrap_or_else(|e| panic!("printed program failed to re-parse: {e}\n{printed}"));
        prop_assert_eq!(&printed, &reparsed.to_string(), "display unstable for\n{}", source);
    }

    #[test]
    fn facts_round_trip_through_display(seed in 0u64..u64::MAX) {
        let source = Source::new(seed.wrapping_add(0x9E37)).facts();
        let rules = parse_facts(&source)
            .unwrap_or_else(|e| panic!("generated facts failed to parse: {e}\n{source}"));
        let printed: Vec<String> = rules.iter().map(ToString::to_string).collect();
        let reparsed = parse_facts(&printed.join("\n"))
            .unwrap_or_else(|e| panic!("printed facts failed to re-parse: {e}\n{printed:?}"));
        let reprinted: Vec<String> = reparsed.iter().map(ToString::to_string).collect();
        prop_assert_eq!(&printed, &reprinted, "display unstable for\n{}", source);
        prop_assert_eq!(rules, reparsed);
    }

    #[test]
    fn queries_round_trip_through_display(seed in 0u64..u64::MAX) {
        let source = Source::new(seed.wrapping_mul(0x2545F491)).query();
        let query = parse_query(&source)
            .unwrap_or_else(|e| panic!("generated query failed to parse: {e}\n{source}"));
        let printed = query.to_string();
        let reparsed = parse_query(&printed)
            .unwrap_or_else(|e| panic!("printed query failed to re-parse: {e}\n{printed}"));
        prop_assert_eq!(&printed, &reparsed.to_string(), "display unstable for\n{}", source);
        prop_assert_eq!(query, reparsed);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn symbols_round_trip_through_the_interner(seed in 0u64..u64::MAX) {
        // parse → intern → Display → parse is the identity on symbols: a
        // spelling interns to one stable id, the interned symbol prints its
        // exact spelling, and re-parsing the printed fact reaches the *same*
        // id (value equality on facts is id equality on their symbols).
        use pushing_constraint_selections::engine::{parse_facts as parse_engine_facts, Value};
        use pushing_constraint_selections::lang::{SymbolTable, Symbol};

        // Random lowercase spellings, `[a-z][a-z0-9_]{0,12}` by construction.
        let mut rng = StdRng::seed_from_u64(seed);
        let spellings: Vec<String> = (0..rng.random_range(1..8usize))
            .map(|_| {
                let mut s = String::new();
                s.push((b'a' + rng.random_range(0..26u8)) as char);
                for _ in 0..rng.random_range(0..12usize) {
                    let tail = b"abcdefghijklmnopqrstuvwxyz0123456789_";
                    s.push(tail[rng.random_range(0..tail.len())] as char);
                }
                s
            })
            .collect();

        let table = SymbolTable::shared();
        for spelling in &spellings {
            let symbol = Symbol::new(spelling);
            prop_assert_eq!(symbol.name(), spelling.as_str());
            prop_assert_eq!(symbol.to_string(), spelling.clone());
            prop_assert_eq!(table.intern(spelling), symbol.id());
            prop_assert_eq!(table.resolve(symbol.id()), spelling.as_str());

            let source = format!("loc({spelling}, {spelling}2, 1).");
            let facts = parse_engine_facts(&source).unwrap();
            prop_assert_eq!(facts.len(), 1);
            let fact = &facts[0];
            let values = fact.ground_values().expect("ground fact");
            let first = values[0].as_sym().expect("symbol argument");
            prop_assert_eq!(first.id(), symbol.id(), "parse reached a different id");
            prop_assert_eq!(&values[0], &Value::sym(spelling));

            // Display → parse lands on the identical interned fact.
            let (literal, _) = fact.to_literal_and_constraint();
            let reparsed = parse_engine_facts(&format!("{literal}.")).unwrap();
            prop_assert_eq!(&reparsed[0], fact, "printed fact re-parsed differently");
            prop_assert_eq!(
                reparsed[0].ground_values().unwrap()[0].as_sym().unwrap().id(),
                symbol.id()
            );
        }
    }
}

#[test]
fn engine_facts_round_trip_into_the_database_layer() {
    // The engine's `Fact` display is `literal; constraint` — the `.facts`
    // listing format.  Its rule form must round-trip through the fact
    // parser: (parse → store → render as rule → parse) preserves the
    // stored fact, constraint facts included.
    use pushing_constraint_selections::engine::{Database, Fact};
    let mut db = Database::new();
    db.add_facts_str(
        "singleleg(madison, chicago, 50, 100).\n\
         bound(X) :- X >= -3/2, X <= 7/2.\n\
         pair(X, X) :- X >= 1.\n\
         point(-1.5, 2).",
    )
    .unwrap();
    for fact in db.all_facts().cloned().collect::<Vec<Fact>>() {
        let (literal, constraint) = fact.to_literal_and_constraint();
        let rendered = if constraint.is_trivially_true() {
            format!("{literal}.")
        } else {
            let atoms: Vec<String> = constraint.atoms().iter().map(ToString::to_string).collect();
            format!("{literal} :- {}.", atoms.join(", "))
        };
        let reparsed = parse_facts(&rendered)
            .unwrap_or_else(|e| panic!("rendered fact failed to re-parse: {e}\n{rendered}"));
        assert_eq!(reparsed.len(), 1, "{rendered}");
        let mut round = Database::new();
        round.add_facts_str(&rendered).unwrap();
        let stored = round.all_facts().next().unwrap();
        assert!(
            stored.equivalent(&fact),
            "round-tripped fact diverged: {fact} vs {stored} (via {rendered})"
        );
    }
}
