//! The flights program of Examples 1.1 and 4.3: pushing the `T <= 240` and
//! `C <= 150` selections into the recursive definition of `flight` so that no
//! flight that is both long and expensive is ever materialized.
//!
//! Run with `cargo run --example flights`.

use pcs_engine::EvalResult;
use pushing_constraint_selections::prelude::*;

fn count_irrelevant_flights(result: &EvalResult, pred: &Pred) -> usize {
    result
        .facts_for(pred)
        .iter()
        .filter(|fact| {
            fact.ground_values().is_some_and(|v| {
                v[2].as_num().is_some_and(|t| t > 240.into())
                    && v[3].as_num().is_some_and(|c| c > 150.into())
            })
        })
        .count()
}

fn main() {
    let program = programs::flights();
    println!("== flights program (Example 1.1) ==\n{program}");

    let db = programs::flights_database(8, 60);
    println!(
        "EDB: {} singleleg facts (60 of them both long and expensive)\n",
        db.len(),
    );

    let strategies = [
        ("original", Strategy::None),
        ("constraint_rewrite (pred,qrp)", Strategy::ConstraintRewrite),
        ("magic only", Strategy::MagicOnly),
        ("optimal (pred,qrp,mg)", Strategy::Optimal),
    ];

    println!(
        "{:<32} {:>8} {:>14} {:>18} {:>12}",
        "strategy", "answers", "flight facts", "irrelevant facts", "ground only"
    );
    for (name, strategy) in strategies {
        let optimized = Optimizer::new(program.clone())
            .strategy(strategy)
            .optimize()
            .expect("rewrite succeeds");
        let result = optimized.evaluate(&db);
        let flight_pred = result
            .relations
            .keys()
            .find(|p| p.name().starts_with("flight") && !result.facts_for(p).is_empty())
            .cloned()
            .unwrap_or_else(|| Pred::new("flight"));
        println!(
            "{:<32} {:>8} {:>14} {:>18} {:>12}",
            name,
            optimized.count_answers(&db),
            result.count_for(&flight_pred),
            count_irrelevant_flights(&result, &flight_pred),
            result.only_ground_facts()
        );
    }
    println!(
        "\nThe rewritten programs never materialize a flight with time > 240 and cost > 150,\n\
         exactly as Example 4.3 promises, while returning the same answers."
    );
}
