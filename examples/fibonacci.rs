//! The backward Fibonacci query of Example 1.2: `?- fib(N, 5)`.
//!
//! The Magic Templates rewriting alone (Table 1) diverges — the magic
//! predicate keeps demanding smaller and smaller (even negative) indices and
//! generates constraint facts.  Introducing the predicate constraint
//! `$2 >= 1` into the recursive rule (program `P_fib_1`, Example 4.4) makes
//! the same evaluation terminate after eight iterations (Table 2).
//!
//! Run with `cargo run --example fibonacci`.

use pushing_constraint_selections::prelude::*;

fn fib_with_predicate_constraint(target: i64) -> Program {
    // Program P_fib_1 of Example 4.4: the PTOL of $2 >= 1 is attached to each
    // body occurrence of fib in the recursive rule.
    parse_program(&format!(
        "r1: fib(0, 1).\n\
         r2: fib(1, 1).\n\
         r3: fib(N, X1 + X2) :- N > 1, fib(N - 1, X1), X1 >= 1, fib(N - 2, X2), X2 >= 1.\n\
         ?- fib(N, {target}).",
    ))
    .expect("parses")
}

fn run(label: &str, program: &Program, iterations: usize) {
    let magic = magic_rewrite(program, &MagicOptions::full_sips()).expect("magic rewriting");
    let result =
        Evaluator::new(&magic.program, EvalOptions::traced(iterations)).evaluate(&Database::new());
    println!("== {label} ==");
    for (i, iter) in result.stats.iterations.iter().enumerate() {
        let facts: Vec<String> = iter
            .records
            .iter()
            .map(|r| {
                if r.new {
                    format!("{}:{}", r.rule, r.fact)
                } else {
                    format!("[subsumed] {}:{}", r.rule, r.fact)
                }
            })
            .collect();
        println!("iteration {i}: {}", facts.join("   "));
    }
    let answers = result.answers(magic.program.query().unwrap());
    println!(
        "terminated: {:?}; constraint facts stored: {}; answers: {}\n",
        result.termination,
        result.stats.constraint_facts,
        answers.len()
    );
}

fn main() {
    // Table 1: the plain magic program diverges (we cap it at 9 iterations).
    run(
        "P_fib^mg (Table 1, capped at 9 iterations)",
        &programs::fibonacci(5),
        9,
    );
    // Table 2: after introducing the predicate constraint $2 >= 1 the same
    // query terminates and answers N = 4.
    run(
        "P_fib_1^mg (Table 2, terminates)",
        &fib_with_predicate_constraint(5),
        50,
    );
    // A query with no answer: ?- fib(N, 6) terminates with "no".
    run(
        "P_fib_1^mg with ?- fib(N, 6)",
        &fib_with_predicate_constraint(6),
        50,
    );
}
