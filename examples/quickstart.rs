//! Quickstart: parse a small CQL program, push its constraint selections, and
//! compare the evaluation before and after.
//!
//! Run with `cargo run --example quickstart`.

use pushing_constraint_selections::prelude::*;

fn main() {
    // Example 4.1 of the paper: the constraint X + Y <= 6 & X >= 2 in the
    // query rule implicitly bounds Y (Y <= 4), but no rule says so explicitly.
    let program = parse_program(
        "r1: q(X) :- p1(X, Y), p2(Y), X + Y <= 6, X >= 2.\n\
         r2: p1(X, Y) :- b1(X, Y).\n\
         r3: p2(X) :- b2(X).\n\
         ?- q(Z).",
    )
    .expect("program parses");

    println!("== original program ==\n{program}");

    // Push the minimum predicate and QRP constraints (Constraint_rewrite).
    let optimized = Optimizer::new(program.clone())
        .strategy(Strategy::ConstraintRewrite)
        .optimize()
        .expect("rewrite succeeds");
    println!("== rewritten program ==\n{}", optimized.program);

    // Build a little EDB where most b1/b2 facts are irrelevant to the query.
    let mut db = Database::new();
    for i in 0..50i64 {
        db.add_ground("b1", vec![Value::num(i), Value::num(i)]);
        db.add_ground("b2", vec![Value::num(i)]);
    }

    let baseline = Optimizer::new(program)
        .strategy(Strategy::None)
        .optimize()
        .expect("baseline");
    let base_eval = baseline.evaluate(&db);
    let opt_eval = optimized.evaluate(&db);

    println!("answers (baseline):  {}", baseline.count_answers(&db));
    println!("answers (rewritten): {}", optimized.count_answers(&db));
    println!(
        "p1 facts computed: {} -> {}",
        base_eval.count_for(&Pred::new("p1")),
        opt_eval.count_for(&Pred::new("p1"))
    );
    println!(
        "p2 facts computed: {} -> {}",
        base_eval.count_for(&Pred::new("p2")),
        opt_eval.count_for(&Pred::new("p2"))
    );
    println!(
        "total facts:       {} -> {}",
        base_eval.total_facts(),
        opt_eval.total_facts()
    );
}
