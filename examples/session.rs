//! An incremental materialized session over the flights program.
//!
//! Materializes the optimally rewritten flights program once, answers the
//! query from a snapshot, then streams in new legs as EDB updates that
//! *resume* the semi-naive fixpoint instead of recomputing it — and checks
//! at each step that the resumed materialization matches a from-scratch
//! evaluation of the grown database.
//!
//! Run with `cargo run --example session`.

use pushing_constraint_selections::prelude::*;

fn main() {
    let program = programs::flights();
    let base = programs::flights_database(6, 20);

    let optimizer = Optimizer::new(program).strategy(Strategy::Optimal);
    let session = Session::materialize(&optimizer, &base).expect("materializes");
    let stats = session.stats();
    println!(
        "materialized {} facts across {} relations (answers in `{}`)",
        stats.total_facts,
        stats.relations.len(),
        stats.query_pred
    );

    let query = parse_query("?- cheaporshort(madison, seattle, T, C).").expect("parses");
    let (_, snapshot, answers) = session.query(&query).expect("answers");
    println!(
        "epoch {}: {} madison->seattle answers",
        snapshot.epoch(),
        answers.len()
    );

    // New legs arrive one batch at a time.
    let updates = [
        "singleleg(madison, seattle, 45, 30).",
        "singleleg(madison, stopover, 20, 20).\nsingleleg(stopover, seattle, 30, 25).",
    ];
    let mut grown = base.clone();
    for batch in updates {
        let outcome = session.insert_str(batch).expect("updates apply");
        println!(
            "epoch {}: +{} facts in {:?} ({} derivations, {} iterations)",
            outcome.epoch,
            outcome.new_facts,
            outcome.elapsed,
            outcome.derivations,
            outcome.iterations
        );

        // The resumed materialization matches a from-scratch evaluation.
        grown.add_facts_str(batch).expect("updates parse");
        let scratch = optimizer.optimize().expect("optimizes").evaluate(&grown);
        assert_eq!(outcome.total_facts, scratch.total_facts());
        assert_eq!(outcome.termination, scratch.termination);
    }

    let (_, snapshot, answers) = session.query(&query).expect("answers");
    println!(
        "epoch {}: {} madison->seattle answers",
        snapshot.epoch(),
        answers.len()
    );
    for fact in &answers {
        println!("  {fact}");
    }
    assert!(answers.len() >= 3);
    println!("resumed sessions and from-scratch evaluation agree");
}
