//! The Section 7 ordering study: in which order should constraint propagation
//! (`pred`, `qrp`) and the Magic Templates rewriting (`mg`) be applied?
//!
//! Examples 7.1 and 7.2 show the rewritings are not confluent; Theorem 7.10
//! shows `pred, qrp, mg` is optimal among sequences that apply magic once.
//!
//! Run with `cargo run --example optimizer_orderings`.

use pushing_constraint_selections::prelude::*;

fn report(name: &str, program: &Program, db: &Database, sequences: &[&[Step]]) {
    println!("== {name} ==");
    println!(
        "{:<24} {:>12} {:>12} {:>10}",
        "sequence", "total facts", "derivations", "answers"
    );
    for steps in sequences {
        let optimized = Optimizer::new(program.clone())
            .strategy(Strategy::Sequence(steps.to_vec()))
            .optimize()
            .expect("sequence applies");
        let result = optimized.evaluate(db);
        let answers = optimized.count_answers(db);
        let label: Vec<&str> = steps
            .iter()
            .map(pushing_constraint_selections::prelude::Step::short_name)
            .collect();
        println!(
            "{:<24} {:>12} {:>12} {:>10}",
            label.join(","),
            result.total_facts(),
            result.stats.total_derivations(),
            answers
        );
    }
    println!();
}

fn main() {
    let sequences: Vec<&[Step]> = vec![
        &[Step::Qrp, Step::Magic],
        &[Step::Magic, Step::Qrp],
        &[Step::Pred, Step::Qrp, Step::Magic],
        &[Step::Magic, Step::Pred, Step::Qrp],
    ];

    // Example 7.1 / D.1: qrp before mg wins.
    let db = programs::example_7x_database(40, 30);
    report(
        "Example 7.1 (qrp,mg preferable)",
        &programs::example_71(),
        &db,
        &sequences,
    );

    // Example 7.2 / D.2: mg before qrp wins.
    report(
        "Example 7.2 (mg,qrp preferable)",
        &programs::example_72(),
        &db,
        &sequences,
    );

    // Flights: the optimal sequence of Theorem 7.10.
    let flights_db = programs::flights_database(8, 40);
    report(
        "Flights (Theorem 7.10: pred,qrp,mg optimal)",
        &programs::flights(),
        &flights_db,
        &sequences,
    );
}
