//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! implements the subset of proptest that the workspace's property tests
//! use: the [`proptest!`] macro, [`prop_assert!`]/[`prop_assert_eq!`],
//! [`test_runner::Config`] (aliased as `ProptestConfig`), integer-range and
//! tuple strategies, and [`collection::vec`].
//!
//! Semantics are a simplification of the real crate: inputs are drawn from a
//! deterministic SplitMix64 stream (one fixed seed per case index, so runs
//! are reproducible), and there is **no shrinking** — a failing case panics
//! with the case index so it can be replayed.  Swapping in the real crate
//! later requires no changes to the tests themselves.
//!
//! ```
//! use proptest::prelude::*;
//!
//! proptest! {
//!     #![proptest_config(ProptestConfig::with_cases(8))]
//!
//!     // In a test module this would also carry #[test].
//!     fn addition_commutes(pair in (0i64..100, 0i64..100)) {
//!         let (a, b) = pair;
//!         prop_assert_eq!(a + b, b + a);
//!     }
//! }
//! addition_commutes();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

/// Test-runner configuration and the deterministic source of randomness.
pub mod test_runner {
    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of random cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` random cases per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic per-case random stream, backed by the vendored
    /// [`rand::rngs::StdRng`] (as the real proptest is backed by `rand`).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        inner: rand::rngs::StdRng,
    }

    impl TestRng {
        /// The generator used for case number `case` of a test.
        ///
        /// Seeding is a pure function of the case index, so failures are
        /// reproducible across runs and machines.
        pub fn for_case(case: u32) -> Self {
            use rand::SeedableRng as _;
            let seed =
                0xC0FF_EE00_DEAD_BEEF ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
            TestRng {
                inner: rand::rngs::StdRng::seed_from_u64(seed),
            }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            use rand::Rng as _;
            self.inner.next_u64()
        }

        /// Uniform sample in `[0, bound)`; panics if `bound == 0`.
        pub fn below(&mut self, bound: u64) -> u64 {
            assert!(bound > 0, "cannot sample below 0");
            self.next_u64() % bound
        }
    }
}

/// Value-generation strategies.
pub mod strategy {
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// A recipe for generating random values of type [`Strategy::Value`].
    ///
    /// This mirrors the role (not the full shape) of proptest's `Strategy`
    /// trait; there is no value tree and no shrinking.
    pub trait Strategy {
        /// The type of value this strategy generates.
        type Value;

        /// Generates one value from `rng`.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_strategy_int_range {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample from empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_strategy_int_range!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

    impl<A: Strategy, B: Strategy> Strategy for (A, B) {
        type Value = (A::Value, B::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (self.0.generate(rng), self.1.generate(rng))
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
        type Value = (A::Value, B::Value, C::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
        type Value = (A::Value, B::Value, C::Value, D::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
            )
        }
    }

    impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy, E: Strategy> Strategy for (A, B, C, D, E) {
        type Value = (A::Value, B::Value, C::Value, D::Value, E::Value);

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            (
                self.0.generate(rng),
                self.1.generate(rng),
                self.2.generate(rng),
                self.3.generate(rng),
                self.4.generate(rng),
            )
        }
    }
}

/// Strategies for collections.
pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    /// Strategy producing a `Vec` whose length is drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// A `Vec<_>` strategy: each case draws a length in `len`, then that
    /// many elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let len = self.len.generate(rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// The glob-import surface mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Defines property tests.
///
/// Supports the shape used in this workspace: an optional
/// `#![proptest_config(...)]` header followed by `#[test] fn` items whose
/// parameters are `pattern in strategy` pairs.  Each generated test runs
/// `config.cases` deterministic cases; a failing case panics immediately
/// (no shrinking), reporting the case index.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $config;
                for case in 0..config.cases {
                    let mut proptest_rng = $crate::test_runner::TestRng::for_case(case);
                    $(
                        let $arg = $crate::strategy::Strategy::generate(
                            &($strat),
                            &mut proptest_rng,
                        );
                    )+
                    let run = || $body;
                    run();
                }
            }
        )*
    };
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $(
                $(#[$meta])*
                fn $name($($arg in $strat),+) $body
            )*
        }
    };
}

/// `assert!` under a name the real proptest exports.
///
/// The real macro returns a `TestCaseError`; this stand-in panics, which the
/// surrounding test harness reports identically (minus shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)*) => {
        assert!($cond, $($fmt)*)
    };
}

/// `assert_eq!` under a name the real proptest exports.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right)
    };
    ($left:expr, $right:expr, $($fmt:tt)*) => {
        assert_eq!($left, $right, $($fmt)*)
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn vec_strategy_respects_length_range() {
        let strat = crate::collection::vec((0i64..5, 0i64..5), 1..14);
        for case in 0..100 {
            let mut rng = crate::test_runner::TestRng::for_case(case);
            let v = strat.generate(&mut rng);
            assert!(!v.is_empty() && v.len() < 14);
            for (a, b) in v {
                assert!((0..5).contains(&a) && (0..5).contains(&b));
            }
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let strat = 0i64..1000;
        let mut one = crate::test_runner::TestRng::for_case(3);
        let mut two = crate::test_runner::TestRng::for_case(3);
        assert_eq!(strat.generate(&mut one), strat.generate(&mut two));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_runnable_tests(xs in crate::collection::vec(0i64..10, 1..5)) {
            prop_assert!(!xs.is_empty());
            prop_assert!(xs.iter().all(|x| (0..10).contains(x)));
        }
    }
}
