//! Offline stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this vendored crate
//! provides the criterion API subset used by the workspace's five benches:
//! [`Criterion`], [`BenchmarkGroup`], [`BenchmarkId`], [`Bencher::iter`],
//! and the [`criterion_group!`]/[`criterion_main!`] macros.
//!
//! Measurement is deliberately simple: each benchmark runs one warm-up
//! sample plus `sample_size` measured samples (each sample adaptively
//! batches very fast closures), then prints the minimum, mean and maximum
//! per-iteration wall-clock time.  There is no statistical analysis, no
//! plotting, and no baseline comparison — the benches exist so that the
//! paper-reproduction hot paths are *timed and compiled in CI*
//! (`cargo bench --no-run`); swapping in the real criterion later requires
//! no changes to the bench sources.
//!
//! ```
//! use criterion::{Bencher, BenchmarkId, Criterion};
//!
//! let mut c = Criterion::default();
//! let mut group = c.benchmark_group("doc");
//! group.sample_size(3);
//! group.bench_function("sum", |b: &mut Bencher| b.iter(|| (0..100u64).sum::<u64>()));
//! group.bench_with_input(BenchmarkId::new("sum_to", 100u64), &100u64, |b, n| {
//!     b.iter(|| (0..*n).sum::<u64>())
//! });
//! group.finish();
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Top-level benchmark driver; one per bench binary.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration.
    ///
    /// The real criterion parses `--bench`, filters, and baseline flags; the
    /// stand-in accepts and ignores them (cargo always passes `--bench` to
    /// `harness = false` bench targets).
    #[must_use]
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("group {name}");
        BenchmarkGroup {
            _criterion: self,
            name,
            sample_size: 10,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), 10, f);
        self
    }
}

/// A named collection of benchmarks sharing sampling configuration.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Accepted for criterion compatibility; the stand-in's sampling is
    /// driven purely by [`Self::sample_size`].
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for criterion compatibility; the stand-in always runs
    /// exactly one warm-up sample.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs a benchmark in this group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = format!("{}/{}", self.name, id.into());
        run_benchmark(&id, self.sample_size, f);
        self
    }

    /// Runs a benchmark parameterized by `input`.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let id = format!("{}/{}", self.name, id.render());
        run_benchmark(&id, self.sample_size, |b| f(b, input));
        self
    }

    /// Ends the group.  (The real criterion finalizes reports here.)
    pub fn finish(self) {}
}

/// Identifies one parameterized benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    function: String,
    parameter: String,
}

impl BenchmarkId {
    /// A benchmark id `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: parameter.to_string(),
        }
    }

    fn render(&self) -> String {
        format!("{}/{}", self.function, self.parameter)
    }
}

/// Timing context handed to each benchmark closure.
#[derive(Debug)]
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `f`, batching fast closures until the sample is long enough to
    /// measure (>= 1 ms or 1000 iterations, whichever comes first).
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let floor = Duration::from_millis(1);
        let start = Instant::now();
        let mut iterations = 0u64;
        loop {
            black_box(f());
            iterations += 1;
            if iterations >= 1000 {
                break;
            }
            // Read the clock at exponentially spaced iteration counts (then
            // every 64), so slow closures stop after one iteration while
            // nanosecond-scale closures are not dominated by clock reads.
            let check = iterations.is_power_of_two() || iterations % 64 == 0;
            if check && start.elapsed() >= floor {
                break;
            }
        }
        self.elapsed = start.elapsed();
        self.iterations = iterations;
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(id: &str, samples: usize, mut f: F) {
    let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
    // One warm-up sample, discarded.
    let mut bencher = Bencher {
        iterations: 0,
        elapsed: Duration::ZERO,
    };
    f(&mut bencher);
    for _ in 0..samples {
        let mut bencher = Bencher {
            iterations: 0,
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        if bencher.iterations > 0 {
            per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iterations as f64);
        }
    }
    if per_iter.is_empty() {
        println!("  {id}: no samples (closure never called Bencher::iter)");
        return;
    }
    let min = per_iter.iter().copied().fold(f64::INFINITY, f64::min);
    let max = per_iter.iter().copied().fold(0.0f64, f64::max);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
    println!(
        "  {id}: [{} {} {}] ({} samples)",
        format_seconds(min),
        format_seconds(mean),
        format_seconds(max),
        per_iter.len()
    );
}

fn format_seconds(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.3} s")
    } else if s >= 1e-3 {
        format!("{:.3} ms", s * 1e3)
    } else if s >= 1e-6 {
        format!("{:.3} us", s * 1e6)
    } else {
        format!("{:.1} ns", s * 1e9)
    }
}

/// Bundles benchmark functions into a group runner, mirroring criterion's
/// macro of the same name.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates the bench binary's `main`, mirroring criterion's macro of the
/// same name.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_at_least_one_iteration() {
        let mut c = Criterion::default();
        let mut ran = 0u32;
        c.bench_function("counter", |b| {
            b.iter(|| std::thread::sleep(Duration::from_micros(50)));
            ran += 1;
        });
        // 1 warm-up + 10 samples.
        assert_eq!(ran, 11);
    }

    #[test]
    fn group_api_chains() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group
            .sample_size(2)
            .measurement_time(Duration::from_secs(1))
            .warm_up_time(Duration::from_millis(10));
        group.bench_function("noop", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::new("with_input", 42), &42, |b, n| {
            b.iter(|| n + 1);
        });
        group.finish();
    }

    #[test]
    fn format_seconds_picks_sane_units() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" us"));
        assert!(format_seconds(2e-9).ends_with(" ns"));
    }
}
