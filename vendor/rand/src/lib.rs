//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no access to crates.io, so
//! this vendored crate provides the small slice of the `rand` 0.9 API that
//! the workspace actually uses: [`SeedableRng::seed_from_u64`],
//! [`Rng::random_range`] over integer ranges, and [`rngs::StdRng`].
//!
//! The generator is SplitMix64 — statistically fine for synthetic workload
//! generation, deterministic for a given seed, and emphatically **not**
//! cryptographic.  If the real `rand` crate ever becomes available, deleting
//! `vendor/rand` and pointing the workspace dependency at crates.io is the
//! only change required.
//!
//! ```
//! use rand::rngs::StdRng;
//! use rand::{Rng, SeedableRng};
//!
//! let mut rng = StdRng::seed_from_u64(42);
//! let a: i64 = rng.random_range(30..=400);
//! assert!((30..=400).contains(&a));
//! let b = rng.random_range(0..10usize);
//! assert!(b < 10);
//! // Reproducible: the same seed yields the same stream.
//! let mut again = StdRng::seed_from_u64(42);
//! assert_eq!(again.random_range(30..=400i64), a);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// A random number generator that can be seeded from a `u64`.
pub trait SeedableRng: Sized {
    /// Creates a new generator seeded from `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Core random-generation interface: a `u64` source plus range sampling.
pub trait Rng {
    /// Returns the next raw 64 random bits from the generator.
    fn next_u64(&mut self) -> u64;

    /// Samples a value uniformly from `range`.
    ///
    /// Mirrors `rand 0.9`'s `Rng::random_range`.  Panics if the range is
    /// empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// A range that values of type `T` can be sampled from.
///
/// Implemented for half-open and inclusive ranges over the integer types the
/// workspace generators use.
pub trait SampleRange<T> {
    /// Draws one uniform sample from `self` using `rng`.
    fn sample_from<R: Rng>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (self.start as i128 + offset as i128) as $t
            }
        }

        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng>(self, rng: &mut R) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (start as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_range_int!(i8, i16, i32, i64, u8, u16, u32, u64, usize, isize);

/// Concrete generator implementations.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard deterministic generator (SplitMix64).
    ///
    /// Unlike the real `rand::rngs::StdRng` this is not cryptographically
    /// secure; it exists to make seeded workload generation reproducible.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        state: u64,
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood 2014): one additive step plus
            // an avalanche of xor-shifts and multiplications.
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn range_sampling_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(99);
        for _ in 0..1000 {
            let x: i64 = rng.random_range(-5..17);
            assert!((-5..17).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let z: i64 = rng.random_range(30..=400);
            assert!((30..=400).contains(&z));
        }
    }

    #[test]
    fn inclusive_singleton_range_is_constant() {
        let mut rng = StdRng::seed_from_u64(0);
        for _ in 0..10 {
            assert_eq!(rng.random_range(4..=4i64), 4);
        }
    }
}
